// Package bench implements the paper's benchmark suite — the iterative
// benchmarks plus-reduce-array, spmv (random, powerlaw, arrowhead),
// mandelbrot, kmeans, srad, and floyd-warshall (two sizes), and the
// recursive benchmarks knapsack and mergesort (uniform and exponential
// inputs) — each in three variants: serial, Cilk-style (eager task
// creation with the 8P grain heuristic), and heartbeat (TPAL).
//
// Parallel variants express maximal latent parallelism, including nested
// loops (for example spmv parallelizes both the row loop and each row's
// dot product), as the paper's programming model prescribes: granularity
// is the scheduler's problem, not the program's.
//
// Default input sizes are scaled down from the paper's (which target a
// 16-core 32 GB machine) to complete in fractions of a second per run;
// the Scale parameter raises them toward the paper's.
package bench

import (
	"fmt"

	"tpal/internal/cilk"
	"tpal/internal/heartbeat"
)

// Kind classifies benchmarks as the paper's figures group them.
type Kind uint8

// Kinds.
const (
	Iterative Kind = iota
	Recursive
)

func (k Kind) String() string {
	if k == Recursive {
		return "recursive"
	}
	return "iterative"
}

// Benchmark is one workload with three variants. Setup must be called
// before any Run; RunSerial must be called at least once before Verify
// (it records the reference output).
type Benchmark interface {
	Name() string
	Kind() Kind
	// Setup prepares inputs at the given scale (1.0 = default size).
	Setup(scale float64)
	// RunSerial executes the serial variant and records its output as
	// the verification reference.
	RunSerial()
	// RunCilk executes the Cilk-style variant inside a cilk context.
	RunCilk(c *cilk.Ctx)
	// RunHeartbeat executes the TPAL variant inside a heartbeat context.
	RunHeartbeat(c *heartbeat.Ctx)
	// Verify checks the most recent parallel output against the serial
	// reference.
	Verify() error
}

// registry of all benchmarks in the paper's presentation order:
// iterative benchmarks first, then recursive.
var registry = []func() Benchmark{
	func() Benchmark { return &plusReduce{} },
	func() Benchmark { return &spmv{variant: "random"} },
	func() Benchmark { return &spmv{variant: "powerlaw"} },
	func() Benchmark { return &spmv{variant: "arrowhead"} },
	func() Benchmark { return &mandelbrot{} },
	func() Benchmark { return &kmeans{} },
	func() Benchmark { return &srad{} },
	func() Benchmark { return &floydWarshall{label: "1K", n: 256} },
	func() Benchmark { return &floydWarshall{label: "2K", n: 512} },
	func() Benchmark { return &knapsack{} },
	func() Benchmark { return &mergesort{dist: "uniform"} },
	func() Benchmark { return &mergesort{dist: "exp"} },
}

// All instantiates every benchmark in presentation order (iterative
// first, then recursive).
func All() []Benchmark {
	out := make([]Benchmark, len(registry))
	for i, f := range registry {
		out[i] = f()
	}
	return out
}

// ByName instantiates one benchmark.
func ByName(name string) (Benchmark, error) {
	for _, f := range registry {
		b := f()
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Names lists benchmark names in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, f := range registry {
		out[i] = f().Name()
	}
	return out
}

func scaled(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}
