package bench

import (
	"errors"
	"math/rand"

	"tpal/internal/cilk"
	"tpal/internal/heartbeat"
	"tpal/internal/matrix"
)

const sradIters = 4

// srad is speckle-reducing anisotropic diffusion from the Rodinia suite
// (a 4k × 4k matrix in the paper): per iteration, one stencil pass
// computes diffusion coefficients from local gradients and a second pass
// applies the divergence update. Two dependent parallel-loop nests per
// iteration with a reduction for the image statistics.
type srad struct {
	n      int
	orig   []float64 // pristine input; each Run starts from a copy
	img    []float64
	work   []float64
	coef   []float64
	ref    []float64
	lambda float64
}

// reset restores the input image so every variant runs from the same
// starting state (the diffusion passes mutate it).
func (b *srad) reset() {
	if b.img == nil {
		b.img = make([]float64, len(b.orig))
	}
	copy(b.img, b.orig)
}

func (b *srad) Name() string { return "srad" }
func (b *srad) Kind() Kind   { return Iterative }

func (b *srad) Setup(scale float64) {
	b.n = scaled(384, scale)
	rng := rand.New(rand.NewSource(17))
	b.orig = make([]float64, b.n*b.n)
	for i := range b.orig {
		b.orig[i] = 1 + rng.Float64()*254
	}
	b.img = nil
	b.reset()
	b.work = make([]float64, b.n*b.n)
	b.coef = make([]float64, b.n*b.n)
	b.lambda = 0.5
	b.ref = nil
}

func (b *srad) clampIdx(i int) int {
	if i < 0 {
		return 0
	}
	if i >= b.n {
		return b.n - 1
	}
	return i
}

// statsLeaf folds sum and sum-of-squares over a block of the image.
func statsLeaf(img []float64, lo, hi int) [2]float64 {
	var s, s2 float64
	for i := lo; i < hi; i++ {
		v := img[i]
		s += v
		s2 += v * v
	}
	return [2]float64{s, s2}
}

func addPairs(a, v [2]float64) [2]float64 { return [2]float64{a[0] + v[0], a[1] + v[1]} }

// coefRow computes the diffusion coefficient for row i given the global
// speckle statistic q0sqr.
func (b *srad) coefRow(i int, q0sqr float64) {
	n := b.n
	for j := 0; j < n; j++ {
		c := b.img[i*n+j]
		dN := b.img[b.clampIdx(i-1)*n+j] - c
		dS := b.img[b.clampIdx(i+1)*n+j] - c
		dW := b.img[i*n+b.clampIdx(j-1)] - c
		dE := b.img[i*n+b.clampIdx(j+1)] - c
		g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (c * c)
		l := (dN + dS + dW + dE) / c
		num := 0.5*g2 - (1.0/16.0)*l*l
		den := 1 + 0.25*l
		qsqr := num / (den * den)
		den = (qsqr - q0sqr) / (q0sqr * (1 + q0sqr))
		cf := 1.0 / (1.0 + den)
		if cf < 0 {
			cf = 0
		} else if cf > 1 {
			cf = 1
		}
		b.coef[i*n+j] = cf
	}
}

// updateRow applies the divergence update for row i.
func (b *srad) updateRow(i int) {
	n := b.n
	for j := 0; j < n; j++ {
		c := b.img[i*n+j]
		cN := b.coef[i*n+j]
		cS := b.coef[b.clampIdx(i+1)*n+j]
		cE := b.coef[i*n+b.clampIdx(j+1)]
		dN := b.img[b.clampIdx(i-1)*n+j] - c
		dS := b.img[b.clampIdx(i+1)*n+j] - c
		dW := b.img[i*n+b.clampIdx(j-1)] - c
		dE := b.img[i*n+b.clampIdx(j+1)] - c
		d := cN*(dN+dW) + cS*dS + cE*dE
		b.work[i*n+j] = c + 0.25*b.lambda*d
	}
}

func (b *srad) q0sqr(sum, sum2 float64) float64 {
	total := float64(b.n * b.n)
	mean := sum / total
	variance := sum2/total - mean*mean
	return variance / (mean * mean)
}

func (b *srad) RunSerial() {
	b.reset()
	for it := 0; it < sradIters; it++ {
		st := statsLeaf(b.img, 0, b.n*b.n)
		q := b.q0sqr(st[0], st[1])
		for i := 0; i < b.n; i++ {
			b.coefRow(i, q)
		}
		for i := 0; i < b.n; i++ {
			b.updateRow(i)
		}
		b.img, b.work = b.work, b.img
	}
	b.ref = append([]float64(nil), b.img...)
}

func (b *srad) RunCilk(c *cilk.Ctx) {
	b.reset()
	for it := 0; it < sradIters; it++ {
		st := cilk.Reduce(c, 0, b.n*b.n, addPairs,
			func(lo, hi int) [2]float64 { return statsLeaf(b.img, lo, hi) })
		q := b.q0sqr(st[0], st[1])
		c.ForNested(0, b.n, func(_ *cilk.Ctx, i int) { b.coefRow(i, q) })
		c.ForNested(0, b.n, func(_ *cilk.Ctx, i int) { b.updateRow(i) })
		b.img, b.work = b.work, b.img
	}
}

func (b *srad) RunHeartbeat(c *heartbeat.Ctx) {
	b.reset()
	for it := 0; it < sradIters; it++ {
		st := heartbeat.Reduce(c, 0, b.n*b.n, addPairs,
			func(lo, hi int) [2]float64 { return statsLeaf(b.img, lo, hi) })
		q := b.q0sqr(st[0], st[1])
		// Rows are microsecond-scale bodies: the nested form polls per
		// row, keeping heartbeat observation latency to one row.
		c.ForNested(0, b.n, func(_ *heartbeat.Ctx, i int) { b.coefRow(i, q) })
		c.ForNested(0, b.n, func(_ *heartbeat.Ctx, i int) { b.updateRow(i) })
		b.img, b.work = b.work, b.img
	}
}

func (b *srad) Verify() error {
	if b.ref == nil {
		return errors.New("srad: RunSerial must run before Verify")
	}
	if !matrix.NearlyEqual(b.img, b.ref, 1e-9) {
		return errors.New("srad: image differs from serial reference")
	}
	return nil
}
