package bench

import (
	"testing"
	"time"

	"tpal/internal/cilk"
	"tpal/internal/heartbeat"
	"tpal/internal/interrupt"
)

// smallScale keeps unit-test inputs quick.
const smallScale = 0.1

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"plus-reduce-array",
		"spmv-random", "spmv-powerlaw", "spmv-arrowhead",
		"mandelbrot", "kmeans", "srad",
		"floyd-warshall-1K", "floyd-warshall-2K",
		"knapsack", "mergesort-uniform", "mergesort-exp",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	kinds := map[string]Kind{"knapsack": Recursive, "mergesort-uniform": Recursive,
		"mergesort-exp": Recursive, "spmv-random": Iterative, "srad": Iterative}
	for name, k := range kinds {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Kind() != k {
			t.Errorf("%s kind = %v, want %v", name, b.Kind(), k)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-benchmark"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestSerialIsDeterministic(t *testing.T) {
	for _, name := range []string{"plus-reduce-array", "spmv-random", "srad"} {
		b1, _ := ByName(name)
		b1.Setup(smallScale)
		b1.RunSerial()
		b1.RunSerial() // run twice: second must match its own reference
		if err := b1.Verify(); err != nil {
			t.Errorf("%s: serial rerun does not verify: %v", name, err)
		}
	}
}

func TestCilkVariantsMatchSerial(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			b.Setup(smallScale)
			b.RunSerial()
			cilk.Run(cilk.Config{Workers: 2}, func(c *cilk.Ctx) {
				b.RunCilk(c)
			})
			if err := b.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestHeartbeatVariantsMatchSerial(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			b.Setup(smallScale)
			b.RunSerial()
			// No-beat config: pure serial elaboration of the TPAL variant.
			heartbeat.Run(heartbeat.Config{Workers: 1}, func(c *heartbeat.Ctx) {
				b.RunHeartbeat(c)
			})
			if err := b.Verify(); err != nil {
				t.Fatalf("no-beat: %v", err)
			}
			// Aggressive promotion config.
			heartbeat.Run(heartbeat.Config{
				Workers:   2,
				Mechanism: interrupt.NewVirtual(interrupt.Profile{Name: "test-fast"}),
				Heartbeat: 2 * time.Microsecond,
			}, func(c *heartbeat.Ctx) {
				b.RunHeartbeat(c)
			})
			if err := b.Verify(); err != nil {
				t.Fatalf("fast-beat: %v", err)
			}
		})
	}
}

func TestHeartbeatPromotesOnBenchmarks(t *testing.T) {
	// At a fast beat the iterative benchmarks must actually promote.
	// Scale must be large enough that loops exceed one poll stride
	// (ranges within a stride are unpromotable by design).
	for _, name := range []string{"plus-reduce-array", "mandelbrot", "mergesort-uniform"} {
		b, _ := ByName(name)
		b.Setup(0.5)
		b.RunSerial()
		st := heartbeat.Run(heartbeat.Config{
			Workers:   2,
			Mechanism: interrupt.NewVirtual(interrupt.Profile{Name: "test-fast"}),
			Heartbeat: 5 * time.Microsecond,
		}, func(c *heartbeat.Ctx) {
			b.RunHeartbeat(c)
		})
		if st.Promotions == 0 {
			t.Errorf("%s: no promotions under fast beat", name)
		}
	}
}

func TestWorkSpanSane(t *testing.T) {
	b, _ := ByName("plus-reduce-array")
	b.Setup(smallScale)
	b.RunSerial()
	st := heartbeat.Run(heartbeat.Config{
		Workers:   1,
		Mechanism: interrupt.NewNautilus(),
		Heartbeat: 100 * time.Microsecond,
	}, func(c *heartbeat.Ctx) {
		b.RunHeartbeat(c)
	})
	if st.WorkNanos <= 0 {
		t.Fatalf("work = %d", st.WorkNanos)
	}
	if st.SpanNanos <= 0 || st.SpanNanos > st.WorkNanos*2 {
		t.Fatalf("span = %d vs work %d", st.SpanNanos, st.WorkNanos)
	}
	if st.Promotions > 0 && st.SpanNanos >= st.WorkNanos {
		t.Errorf("promotions happened but span (%d) did not drop below work (%d)", st.SpanNanos, st.WorkNanos)
	}
}
