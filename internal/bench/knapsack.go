package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"tpal/internal/cilk"
	"tpal/internal/heartbeat"
)

// knapsack is the branch-and-bound 0/1 knapsack solver from the Cilk
// benchmark suite (36 items in the paper). It is the suite's only
// nondeterministic benchmark: the amount of work depends on how fast
// good bounds propagate between concurrently exploring tasks, though the
// optimal value itself is schedule-independent. Recursion is pure
// fork-join with almost no computation per frame, which is why the paper
// reports the cost of maintaining promotion-ready marks most visibly
// here.
type knapsack struct {
	items    []ksItem // sorted by value density
	capacity int64
	ref      int64
	out      int64
	best     atomic.Int64
}

type ksItem struct {
	weight, value int64
}

func (b *knapsack) Name() string { return "knapsack" }
func (b *knapsack) Kind() Kind   { return Recursive }

func (b *knapsack) Setup(scale float64) {
	// Strongly correlated instances (value ≈ weight + constant) keep the
	// fractional bound uninformative, forcing genuine branch-and-bound
	// search, as the Cilk suite's hard inputs do. Item count controls
	// tree size; each item roughly doubles it.
	n := 32
	switch {
	case scale >= 4:
		n = 36 // the paper's item count
	case scale >= 2:
		n = 34
	case scale < 0.5:
		n = 22
	}
	rng := rand.New(rand.NewSource(31))
	b.items = make([]ksItem, n)
	var total int64
	for i := range b.items {
		// Subset-sum-like: value equals weight, weights large and
		// incommensurate, so the fractional bound stays loose until an
		// exact-looking fill is found.
		w := int64(1_000_000 + rng.Intn(9_000_000))
		b.items[i] = ksItem{weight: w, value: w}
		total += w
	}
	// Sort by value density, descending, for the fractional bound.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, c := b.items[j-1], b.items[j]
			if c.value*a.weight > a.value*c.weight {
				b.items[j-1], b.items[j] = c, a
			} else {
				break
			}
		}
	}
	b.capacity = total / 2
	b.ref = 0
}

// bound is the fractional (linear relaxation) upper bound from item i
// with remaining capacity cap and accumulated value v.
func (b *knapsack) bound(i int, cap, v int64) int64 {
	for ; i < len(b.items) && cap > 0; i++ {
		it := b.items[i]
		if it.weight <= cap {
			cap -= it.weight
			v += it.value
		} else {
			return v + it.value*cap/it.weight
		}
	}
	return v
}

func serialKS(n ksNode) {
	if n.leafOrPrune() {
		return
	}
	take, skip := n.branches()
	serialKS(take)
	serialKS(skip)
}

func (b *knapsack) RunSerial() {
	b.best.Store(0)
	serialKS(ksNode{b: b, i: 0, cap: b.capacity})
	b.ref = b.best.Load()
	b.out = b.ref
}

// ksNode is a branch-and-bound search node, passed by value to the
// closure-free fork primitives so the recursion allocates nothing.
type ksNode struct {
	b      *knapsack
	i      int
	cap, v int64
}

func (n ksNode) leafOrPrune() bool {
	b := n.b
	if n.cap < 0 {
		return true
	}
	if n.i == len(b.items) {
		for {
			cur := b.best.Load()
			if n.v <= cur || b.best.CompareAndSwap(cur, n.v) {
				return true
			}
		}
	}
	return b.bound(n.i, n.cap, n.v) <= b.best.Load()
}

func (n ksNode) branches() (take, skip ksNode) {
	it := n.b.items[n.i]
	take = ksNode{b: n.b, i: n.i + 1, cap: n.cap - it.weight, v: n.v + it.value}
	skip = ksNode{b: n.b, i: n.i + 1, cap: n.cap, v: n.v}
	return take, skip
}

func cilkKS(c *cilk.Ctx, n ksNode) {
	if n.leafOrPrune() {
		return
	}
	take, skip := n.branches()
	cilk.Spawn2Call(c, cilkKS, take, skip)
}

func (b *knapsack) RunCilk(c *cilk.Ctx) {
	b.best.Store(0)
	cilkKS(c, ksNode{b: b, i: 0, cap: b.capacity})
	b.out = b.best.Load()
}

func hbKS(c *heartbeat.Ctx, n ksNode) {
	if n.leafOrPrune() {
		return
	}
	take, skip := n.branches()
	heartbeat.Fork2Call(c, hbKS, take, skip)
}

func (b *knapsack) RunHeartbeat(c *heartbeat.Ctx) {
	b.best.Store(0)
	hbKS(c, ksNode{b: b, i: 0, cap: b.capacity})
	b.out = b.best.Load()
}

func (b *knapsack) Verify() error {
	if b.ref == 0 {
		return errors.New("knapsack: RunSerial must run before Verify")
	}
	if b.out != b.ref {
		return fmt.Errorf("knapsack: optimal value %d, want %d", b.out, b.ref)
	}
	return nil
}
