package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"tpal/internal/cilk"
	"tpal/internal/heartbeat"
)

// mergesort sorts 64-bit integers (20 million in the paper) drawn from a
// uniform or exponential distribution. It is the one benchmark that
// combines both kinds of parallelism: the sort and merge recurse in
// fork-join style (the merge splits by binary search), and moving runs
// between buffers is a parallel copy loop.
type mergesort struct {
	dist string
	orig []int64
	data []int64
	tmp  []int64
	ref  []int64
}

const msCutoff = 2048 // leaf size below which the serial sort runs

func (b *mergesort) Name() string { return "mergesort-" + b.dist }
func (b *mergesort) Kind() Kind   { return Recursive }

func (b *mergesort) Setup(scale float64) {
	n := scaled(1_000_000, scale)
	rng := rand.New(rand.NewSource(37))
	b.orig = make([]int64, n)
	for i := range b.orig {
		if b.dist == "exp" {
			b.orig[i] = int64(rng.ExpFloat64() * float64(n) / 8)
		} else {
			b.orig[i] = int64(rng.Uint64() % uint64(n*4))
		}
	}
	b.data = make([]int64, n)
	b.tmp = make([]int64, n)
	b.ref = nil
}

func (b *mergesort) reset() { copy(b.data, b.orig) }

func (b *mergesort) RunSerial() {
	// The serial baseline is a serial mergesort with the same structure
	// and leaf cutoff as the parallel variants (the paper notes its
	// mergesort baseline is the one benchmark whose serial program is a
	// genuinely different, serial mergesort).
	b.reset()
	serialMergesort(b.data, b.tmp)
	b.ref = append([]int64(nil), b.data...)
}

func serialMergesort(a, buf []int64) {
	if len(a) <= msCutoff {
		serialSort(a)
		return
	}
	mid := len(a) / 2
	serialMergesort(a[:mid], buf[:mid])
	serialMergesort(a[mid:], buf[mid:])
	serialMerge(a[:mid], a[mid:], buf)
	copy(a, buf)
}

func serialSort(a []int64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// serialMerge merges sorted a and c into out.
func serialMerge(a, c, out []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(c) {
		if a[i] <= c[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = c[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], c[j:])
}

// lowerBound returns the first index in a with a[i] >= v.
func lowerBound(a []int64, v int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// msSortArgs and msMergeArgs pass recursion state by value through the
// closure-free fork primitives.
type msSortArgs struct {
	a, buf []int64
}

type msMergeArgs struct {
	x, y, out []int64
}

// splitMerge prepares the two halves of a parallel merge by binary
// search, or reports that the merge is small enough to run serially.
func (m msMergeArgs) split() (left, right msMergeArgs, small bool) {
	x, y := m.x, m.y
	if len(x) < len(y) {
		x, y = y, x
	}
	if len(x) == 0 || len(x)+len(y) <= msCutoff {
		return msMergeArgs{}, msMergeArgs{}, true
	}
	mx := len(x) / 2
	my := lowerBound(y, x[mx])
	left = msMergeArgs{x: x[:mx], y: y[:my], out: m.out[:mx+my]}
	right = msMergeArgs{x: x[mx:], y: y[my:], out: m.out[mx+my:]}
	return left, right, false
}

func (m msMergeArgs) serial() {
	x, y := m.x, m.y
	if len(x) < len(y) {
		x, y = y, x
	}
	if len(x) == 0 {
		return
	}
	serialMerge(x, y, m.out)
}

// ---- Cilk variant ----

func (b *mergesort) RunCilk(c *cilk.Ctx) {
	b.reset()
	cilkSort(c, msSortArgs{a: b.data, buf: b.tmp})
}

// cilkSort sorts args.a using args.buf as scratch, result in args.a.
func cilkSort(c *cilk.Ctx, args msSortArgs) {
	a, buf := args.a, args.buf
	if len(a) <= msCutoff {
		serialSort(a)
		return
	}
	mid := len(a) / 2
	cilk.Spawn2Call(c, cilkSort,
		msSortArgs{a: a[:mid], buf: buf[:mid]},
		msSortArgs{a: a[mid:], buf: buf[mid:]})
	cilkMerge(c, msMergeArgs{x: a[:mid], y: a[mid:], out: buf})
	// Parallel copy back (the paper's parallel copy loop).
	c.For(0, len(a), func(i int) { a[i] = buf[i] })
}

// cilkMerge merges sorted runs into out, splitting by binary search for
// parallel recursion.
func cilkMerge(c *cilk.Ctx, m msMergeArgs) {
	left, right, small := m.split()
	if small {
		m.serial()
		return
	}
	cilk.Spawn2Call(c, cilkMerge, left, right)
}

// ---- Heartbeat variant ----

func (b *mergesort) RunHeartbeat(c *heartbeat.Ctx) {
	b.reset()
	hbSort(c, msSortArgs{a: b.data, buf: b.tmp})
}

func hbSort(c *heartbeat.Ctx, args msSortArgs) {
	a, buf := args.a, args.buf
	if len(a) <= msCutoff {
		serialSort(a)
		return
	}
	mid := len(a) / 2
	heartbeat.Fork2Call(c, hbSort,
		msSortArgs{a: a[:mid], buf: buf[:mid]},
		msSortArgs{a: a[mid:], buf: buf[mid:]})
	hbMerge(c, msMergeArgs{x: a[:mid], y: a[mid:], out: buf})
	c.For(0, len(a), func(i int) { a[i] = buf[i] })
}

func hbMerge(c *heartbeat.Ctx, m msMergeArgs) {
	left, right, small := m.split()
	if small {
		m.serial()
		return
	}
	heartbeat.Fork2Call(c, hbMerge, left, right)
}

func (b *mergesort) Verify() error {
	if b.ref == nil {
		return fmt.Errorf("%s: RunSerial must run before Verify", b.Name())
	}
	for i := range b.data {
		if b.data[i] != b.ref[i] {
			return fmt.Errorf("%s: element %d = %d, want %d", b.Name(), i, b.data[i], b.ref[i])
		}
	}
	return nil
}
