package bench

import (
	"fmt"
	"math"

	"tpal/internal/cilk"
	"tpal/internal/heartbeat"
	"tpal/internal/matrix"
)

// plusReduce is plus-reduce-array: the sum of a large float64 array
// (100 million doubles in the paper). The finest-grained benchmark in
// the suite: the loop body is a single addition, so any per-iteration or
// per-task overhead is maximally visible.
type plusReduce struct {
	data []float64
	ref  float64
	out  float64
}

func (b *plusReduce) Name() string { return "plus-reduce-array" }
func (b *plusReduce) Kind() Kind   { return Iterative }

func (b *plusReduce) Setup(scale float64) {
	n := scaled(8_000_000, scale)
	b.data = matrix.RandomVector(n, 1)
}

func (b *plusReduce) leaf(lo, hi int) float64 {
	var s float64
	d := b.data
	for i := lo; i < hi; i++ {
		s += d[i]
	}
	return s
}

func (b *plusReduce) RunSerial() {
	b.ref = b.leaf(0, len(b.data))
	b.out = b.ref
}

func (b *plusReduce) RunCilk(c *cilk.Ctx) {
	b.out = cilk.Reduce(c, 0, len(b.data),
		func(a, v float64) float64 { return a + v },
		b.leaf)
}

func (b *plusReduce) RunHeartbeat(c *heartbeat.Ctx) {
	b.out = heartbeat.Reduce(c, 0, len(b.data),
		func(a, v float64) float64 { return a + v },
		b.leaf)
}

func (b *plusReduce) Verify() error {
	if math.Abs(b.out-b.ref) > 1e-6*math.Max(math.Abs(b.ref), 1) {
		return fmt.Errorf("plus-reduce-array: got %g, want %g", b.out, b.ref)
	}
	return nil
}
