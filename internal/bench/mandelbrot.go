package bench

import (
	"errors"
	"fmt"

	"tpal/internal/cilk"
	"tpal/internal/heartbeat"
)

// mandelbrot renders a square image of the Mandelbrot set (4k × 4k in
// the paper). Iteration counts vary wildly across pixels, so rows have
// irregular cost; the parallel variants expose both row- and pixel-level
// parallelism.
type mandelbrot struct {
	n       int
	maxIter int
	img     []int32
	ref     []int32
}

func (b *mandelbrot) Name() string { return "mandelbrot" }
func (b *mandelbrot) Kind() Kind   { return Iterative }

func (b *mandelbrot) Setup(scale float64) {
	b.n = scaled(400, scale)
	b.maxIter = 200
	b.img = make([]int32, b.n*b.n)
	b.ref = nil
}

func (b *mandelbrot) pixel(px, py int) int32 {
	x0 := -2.0 + 2.6*float64(px)/float64(b.n)
	y0 := -1.3 + 2.6*float64(py)/float64(b.n)
	var x, y float64
	var it int32
	for it = 0; int(it) < b.maxIter; it++ {
		xx, yy := x*x, y*y
		if xx+yy > 4 {
			break
		}
		x, y = xx-yy+x0, 2*x*y+y0
	}
	return it
}

func (b *mandelbrot) row(py, lo, hi int) {
	for px := lo; px < hi; px++ {
		b.img[py*b.n+px] = b.pixel(px, py)
	}
}

func (b *mandelbrot) RunSerial() {
	for py := 0; py < b.n; py++ {
		b.row(py, 0, b.n)
	}
	b.ref = append([]int32(nil), b.img...)
}

func (b *mandelbrot) RunCilk(c *cilk.Ctx) {
	c.ForNested(0, b.n, func(cc *cilk.Ctx, py int) {
		cc.For(0, b.n, func(px int) {
			b.img[py*b.n+px] = b.pixel(px, py)
		})
	})
}

func (b *mandelbrot) RunHeartbeat(c *heartbeat.Ctx) {
	c.ForNested(0, b.n, func(cc *heartbeat.Ctx, py int) {
		cc.For(0, b.n, func(px int) {
			b.img[py*b.n+px] = b.pixel(px, py)
		})
	})
}

func (b *mandelbrot) Verify() error {
	if b.ref == nil {
		return errors.New("mandelbrot: RunSerial must run before Verify")
	}
	for i := range b.img {
		if b.img[i] != b.ref[i] {
			return fmt.Errorf("mandelbrot: pixel %d = %d, want %d", i, b.img[i], b.ref[i])
		}
	}
	return nil
}
