package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// idTask is a task carrying only its identity, for exactly-once checks.
type idTask int

func (idTask) Run(*Worker) {}

// TestDequeGrowthUnderActiveStealing drives the ring through several
// growth episodes (64 → 4096+) while thieves steal continuously, and
// checks that every pushed task is taken exactly once — by the owner or
// by exactly one thief — across the grow/steal races. Run under -race
// (make race-test) this also checks the ring-swap publication.
func TestDequeGrowthUnderActiveStealing(t *testing.T) {
	const (
		total   = 200_000
		thieves = 4
		burst   = 512 // pushes per owner burst, > initial capacity 64
	)

	d := NewDeque()
	seen := make([]atomic.Int32, total)
	var taken atomic.Int64

	count := func(task Task) {
		id := int(task.(idTask))
		if n := seen[id].Add(1); n != 1 {
			t.Errorf("task %d taken %d times", id, n)
		}
		taken.Add(1)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if task := d.Steal(); task != nil {
					count(task)
				} else {
					runtime.Gosched()
				}
			}
			// Final sweep: nothing may be left behind.
			for {
				task := d.Steal()
				if task == nil {
					return
				}
				count(task)
			}
		}()
	}

	// Owner: push bursts large enough to outgrow the ring repeatedly,
	// then pop some back, interleaving the three bottom operations the
	// Chase-Lev proof cares about.
	next := 0
	for next < total {
		for i := 0; i < burst && next < total; i++ {
			d.PushBottom(idTask(next))
			next++
		}
		for i := 0; i < burst/4; i++ {
			if task := d.PopBottom(); task != nil {
				count(task)
			}
		}
	}
	for {
		task := d.PopBottom()
		if task == nil {
			break
		}
		count(task)
	}
	stop.Store(true)
	wg.Wait()

	// The owner can observe an empty deque while the last steal is still
	// in flight; after wg.Wait everything is settled.
	if got := taken.Load(); got != total {
		missing := 0
		for i := range seen {
			if seen[i].Load() == 0 {
				missing++
			}
		}
		t.Fatalf("taken %d of %d tasks (%d never seen)", got, total, missing)
	}
}
