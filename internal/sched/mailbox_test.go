package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestTakeHeartbeatPaysPenaltyExactlyOnce pins the Swap-based mailbox
// consume against the double-pay race: a RaiseHeartbeat landing between
// the flag consume and the penalty read must have its penalty paid
// exactly once, by whichever take swaps it out. With the pre-fix code
// (Store(0) on the flag, then Load() of the penalty) the second take
// re-reads and re-pays the same penalty, so this test fails there.
func TestTakeHeartbeatPaysPenaltyExactlyOnce(t *testing.T) {
	p := NewPool(1)
	w := p.Workers()[0]

	// First beat pending with penalty 5; mid-take, a concurrent raise
	// replaces it with penalty 7 (the seam runs between the flag consume
	// and the penalty read, the exact window of the race).
	w.RaiseHeartbeat(5)
	takeSeam = func(w *Worker) { w.RaiseHeartbeat(7) }
	defer func() { takeSeam = nil }()

	if !w.PollHeartbeat() {
		t.Fatal("first poll should observe the pending beat")
	}
	takeSeam = nil

	// The re-raised flag is still up: the second take must find the
	// penalty already consumed (swapped to zero) and pay nothing more.
	if !w.PollHeartbeat() {
		t.Fatal("second poll should observe the re-raised beat")
	}

	if w.HeartbeatsSeen != 2 {
		t.Fatalf("HeartbeatsSeen = %d, want 2", w.HeartbeatsSeen)
	}
	if w.PenaltyNanos != 7 {
		t.Fatalf("PenaltyNanos = %d, want 7 (penalty paid twice?)", w.PenaltyNanos)
	}
}

// beatEveryPoll is a BeatSource firing on every poll with a fixed
// penalty.
type beatEveryPoll struct{ penalty int64 }

func (b beatEveryPoll) Poll(*Worker) (bool, int64) { return true, b.penalty }

// TestBeatSourcePathPaysPenalty pins the consume-and-pay unification:
// beats delivered through a BeatSource must charge PenaltyNanos through
// the same path as mailbox beats. Pre-fix, the BeatSource branch bumped
// HeartbeatsSeen without ever paying, so this test fails there.
func TestBeatSourcePathPaysPenalty(t *testing.T) {
	p := NewPool(1)
	w := p.Workers()[0]
	w.SetBeatSource(beatEveryPoll{penalty: 3})

	for i := 0; i < 4; i++ {
		if !w.PollHeartbeat() {
			t.Fatalf("poll %d: beat source fires every poll", i)
		}
	}
	if w.HeartbeatsSeen != 4 {
		t.Fatalf("HeartbeatsSeen = %d, want 4", w.HeartbeatsSeen)
	}
	if w.PenaltyNanos != 12 {
		t.Fatalf("PenaltyNanos = %d, want 12 (3 per beat)", w.PenaltyNanos)
	}
}

// TestMailboxRaceStress hammers the raise/take pair from concurrent
// goroutines under the race detector: one raiser, one owner polling.
// Invariants: the owner observes at least one beat, pays no more than
// the raiser offered, and the detector sees no data race on the mailbox.
func TestMailboxRaceStress(t *testing.T) {
	p := NewPool(1)
	w := p.Workers()[0]

	const raises = 2000
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < raises; i++ {
			w.RaiseHeartbeat(1)
		}
		stop.Store(true)
	}()

	for !stop.Load() {
		w.PollHeartbeat()
	}
	// Drain any beat raised after the last poll.
	w.PollHeartbeat()
	wg.Wait()

	if w.HeartbeatsSeen == 0 {
		t.Fatal("owner never observed a beat")
	}
	if w.HeartbeatsSeen > raises {
		t.Fatalf("HeartbeatsSeen = %d > %d raises", w.HeartbeatsSeen, raises)
	}
	// Each raise offers penalty 1 and each beat's penalty is paid at
	// most once, so total paid can never exceed total raised.
	if w.PenaltyNanos > raises {
		t.Fatalf("PenaltyNanos = %d > %d offered", w.PenaltyNanos, raises)
	}
}
