package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tpal/internal/trace"
)

// Pool is a set of workers executing tasks cooperatively through
// work stealing. A pool runs one root task to completion per Run call;
// workers spin (with escalating pauses) between tasks, mirroring the
// paper's runtime, which keeps worker threads hot for the duration of a
// benchmark.
type Pool struct {
	workers []*Worker
	done    atomic.Bool
	wg      sync.WaitGroup

	tasksCreated atomic.Int64

	started   time.Time
	elapsed   time.Duration
	startOnce sync.Once
}

// NewPool creates a pool with n workers (n >= 1). Workers are not
// started until Run.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{}
	p.workers = make([]*Worker, n)
	for i := range p.workers {
		p.workers[i] = &Worker{
			id:    i,
			pool:  p,
			deque: NewDeque(),
			rng:   uint64(i)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D,
		}
	}
	return p
}

// Workers returns the pool's workers, for interrupt mechanisms and
// accounting.
func (p *Pool) Workers() []*Worker { return p.workers }

// SetTracer installs an event tracer on every worker (nil disables
// tracing). Call before Run; the tracer must have at least as many
// worker lanes as the pool has workers.
func (p *Pool) SetTracer(t *trace.Tracer) {
	for _, w := range p.workers {
		w.tracer = t
	}
}

// NumWorkers returns the worker count.
func (p *Pool) NumWorkers() int { return len(p.workers) }

// CountTaskCreated bumps the pool-wide created-task counter; the
// heartbeat and Cilk layers call it at every promotion / spawn so that
// Figure 15a's task counts come from one place.
func (p *Pool) CountTaskCreated() { p.tasksCreated.Add(1) }

// TasksCreated returns the number of tasks created during Run.
func (p *Pool) TasksCreated() int64 { return p.tasksCreated.Load() }

// Run executes root on worker 0 and returns when it and every task it
// transitively created have completed. It may be called once per pool.
func (p *Pool) Run(root func(w *Worker)) {
	var rootDone atomic.Int64
	rootDone.Store(1)
	w0 := p.workers[0]
	w0.deque.PushBottom(TaskFunc(func(w *Worker) {
		defer rootDone.Store(0)
		root(w)
	}))

	p.started = time.Now()
	// Workers 1..n-1 run the generic loop; worker 0 runs it too and will
	// pick up the root task immediately (it is at its own bottom).
	for _, w := range p.workers {
		p.wg.Add(1)
		go p.workerLoop(w, &rootDone)
	}
	p.wg.Wait()
	p.elapsed = time.Since(p.started)
}

// Elapsed returns the wall-clock duration of Run.
func (p *Pool) Elapsed() time.Duration { return p.elapsed }

func (p *Pool) workerLoop(w *Worker, rootDone *atomic.Int64) {
	defer p.wg.Done()
	fails := 0
	for {
		if rootDone.Load() == 0 {
			// The root task has returned; its join structure guarantees
			// all transitive work completed before that.
			p.done.Store(true)
			return
		}
		if p.done.Load() {
			return
		}
		if t := w.PopOrSteal(); t != nil {
			fails = 0
			w.Execute(t)
			continue
		}
		fails++
		p.pauseFor(fails)
	}
}

// idlePause is a single short pause used inside join waits.
func (p *Pool) idlePause() {
	runtime.Gosched()
}

// pauseFor escalates from busy yields to short sleeps as consecutive
// failed steal sweeps accumulate, so an idle pool does not burn a full
// core per worker indefinitely while still reacting to new work within
// microseconds.
func (p *Pool) pauseFor(fails int) {
	switch {
	case fails < 8:
		// spin
	case fails < 64:
		runtime.Gosched()
	default:
		time.Sleep(20 * time.Microsecond)
	}
}

// Stats aggregates per-worker accounting after Run.
type Stats struct {
	Elapsed        time.Duration
	Workers        int
	TasksCreated   int64
	TasksExecuted  int64
	Steals         int64
	FailedSteals   int64
	HeartbeatsSeen int64
	PenaltyNanos   int64
	BusyNanos      int64
	JoinIdleNanos  int64
	SelfWorkNanos  int64
}

// Stats returns aggregated counters. Call after Run returns.
func (p *Pool) Stats() Stats {
	s := Stats{
		Elapsed:      p.elapsed,
		Workers:      len(p.workers),
		TasksCreated: p.tasksCreated.Load(),
	}
	for _, w := range p.workers {
		s.TasksExecuted += w.TasksExecuted
		s.Steals += w.Steals
		s.FailedSteals += w.FailedSteals
		s.HeartbeatsSeen += w.HeartbeatsSeen
		s.PenaltyNanos += w.PenaltyNanos
		s.BusyNanos += w.BusyNanos
		s.JoinIdleNanos += w.JoinIdleNanos
		s.SelfWorkNanos += w.SelfWorkNanos
	}
	return s
}

// Utilization is the fraction of total worker wall time spent doing
// useful work: busy time minus time idling inside joins, over workers ×
// elapsed. This is the measure of Figure 15b.
func (s Stats) Utilization() float64 {
	total := float64(s.Elapsed.Nanoseconds()) * float64(s.Workers)
	if total <= 0 {
		return 0
	}
	useful := float64(s.BusyNanos - s.JoinIdleNanos)
	if useful < 0 {
		useful = 0
	}
	u := useful / total
	if u > 1 {
		u = 1
	}
	return u
}
