// Package sched provides the work-stealing substrate shared by the
// heartbeat runtime (internal/heartbeat) and the Cilk-style baseline
// (internal/cilk): per-worker Chase-Lev deques, a worker pool with
// randomized stealing, and per-worker accounting of tasks, busy time,
// and heartbeat deliveries.
package sched

import (
	"sync/atomic"
)

// Task is a schedulable unit of work.
type Task interface {
	Run(w *Worker)
}

// TaskFunc adapts a function to Task.
type TaskFunc func(w *Worker)

// Run implements Task.
func (f TaskFunc) Run(w *Worker) { f(w) }

// Deque is a Chase-Lev work-stealing deque: the owning worker pushes and
// pops at the bottom (LIFO), thieves steal from the top (FIFO), so
// steals take the oldest — and under heartbeat or Cilk scheduling the
// largest — tasks. The dynamic circular array grows on demand; old
// arrays stay reachable until the garbage collector frees them, which
// sidesteps the reclamation races of the original algorithm.
type Deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[dequeRing]
}

type dequeRing struct {
	mask  int64
	slots []atomic.Pointer[Box]
}

// Box is the deque's slot unit: a single-word-publishable holder for a
// task. Callers that allocate tasks anyway can embed a Box in the task
// and push with PushBottomBox, making a spawn a single allocation.
type Box struct {
	task Task
}

// Bind points the box at its task. Call once, before pushing.
func (b *Box) Bind(t Task) { b.task = t }

func newRing(capacity int64) *dequeRing {
	return &dequeRing{mask: capacity - 1, slots: make([]atomic.Pointer[Box], capacity)}
}

func (r *dequeRing) get(i int64) *Box    { return r.slots[i&r.mask].Load() }
func (r *dequeRing) put(i int64, b *Box) { r.slots[i&r.mask].Store(b) }
func (r *dequeRing) capacity() int64     { return r.mask + 1 }
func (r *dequeRing) grow(t, b int64) *dequeRing {
	nr := newRing(r.capacity() * 2)
	for i := t; i < b; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

// NewDeque returns an empty deque with a small initial capacity.
func NewDeque() *Deque {
	d := &Deque{}
	d.ring.Store(newRing(64))
	return d
}

// PushBottom pushes a task at the bottom. Only the owning worker may
// call it.
func (d *Deque) PushBottom(task Task) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= r.capacity()-1 {
		r = r.grow(t, b)
		d.ring.Store(r)
	}
	r.put(b, &Box{task: task})
	d.bottom.Store(b + 1)
}

// PushBottomBox pushes a caller-allocated box, avoiding the box
// allocation of PushBottom. The box must be bound to its task and must
// not be reused until the task has been taken.
func (d *Deque) PushBottomBox(box *Box) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= r.capacity()-1 {
		r = r.grow(t, b)
		d.ring.Store(r)
	}
	r.put(b, box)
	d.bottom.Store(b + 1)
}

// PopBottom pops the most recently pushed task. Only the owning worker
// may call it. It returns nil when the deque is empty or the last task
// was lost to a concurrent steal.
func (d *Deque) PopBottom() Task {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		return nil
	}
	box := r.get(b)
	if t == b {
		// Last element: race against thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			box = nil // a thief won
		}
		d.bottom.Store(b + 1)
	}
	if box == nil {
		return nil
	}
	return box.task
}

// Steal takes the oldest task. Any worker may call it. It returns nil
// when the deque is empty or the steal raced with another and lost.
func (d *Deque) Steal() Task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	r := d.ring.Load()
	box := r.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	if box == nil {
		return nil
	}
	return box.task
}

// Size returns a racy snapshot of the number of queued tasks.
func (d *Deque) Size() int64 {
	s := d.bottom.Load() - d.top.Load()
	if s < 0 {
		return 0
	}
	return s
}
