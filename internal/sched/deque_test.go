package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

type intTask int64

func (intTask) Run(*Worker) {}

func TestDequeLIFOOwner(t *testing.T) {
	d := NewDeque()
	for i := 0; i < 100; i++ {
		d.PushBottom(intTask(i))
	}
	for i := 99; i >= 0; i-- {
		got := d.PopBottom()
		if got == nil {
			t.Fatalf("pop %d: empty", i)
		}
		if int(got.(intTask)) != i {
			t.Fatalf("pop got %v, want %d", got, i)
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("expected empty deque")
	}
}

func TestDequeFIFOThief(t *testing.T) {
	d := NewDeque()
	for i := 0; i < 100; i++ {
		d.PushBottom(intTask(i))
	}
	for i := 0; i < 100; i++ {
		got := d.Steal()
		if got == nil {
			t.Fatalf("steal %d: empty", i)
		}
		if int(got.(intTask)) != i {
			t.Fatalf("steal got %v, want %d", got, i)
		}
	}
	if d.Steal() != nil {
		t.Fatal("expected empty deque")
	}
}

func TestDequeGrowth(t *testing.T) {
	d := NewDeque()
	const n = 10_000 // forces several ring growths from the initial 64
	for i := 0; i < n; i++ {
		d.PushBottom(intTask(i))
	}
	if got := d.Size(); got != n {
		t.Fatalf("size = %d, want %d", got, n)
	}
	for i := n - 1; i >= 0; i-- {
		got := d.PopBottom()
		if got == nil || int(got.(intTask)) != i {
			t.Fatalf("pop got %v, want %d", got, i)
		}
	}
}

func TestDequeInterleavedOwnerOps(t *testing.T) {
	d := NewDeque()
	rng := rand.New(rand.NewSource(7))
	var model []int64
	next := int64(0)
	for step := 0; step < 100_000; step++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			d.PushBottom(intTask(next))
			model = append(model, next)
			next++
		} else {
			got := d.PopBottom()
			want := model[len(model)-1]
			model = model[:len(model)-1]
			if got == nil || int64(got.(intTask)) != want {
				t.Fatalf("step %d: pop got %v, want %d", step, got, want)
			}
		}
	}
}

// TestDequeConcurrentExactlyOnce hammers one deque with an owner and
// several thieves and checks every pushed task is taken exactly once.
func TestDequeConcurrentExactlyOnce(t *testing.T) {
	const (
		n       = 200_000
		thieves = 4
	)
	d := NewDeque()
	taken := make([]atomic.Int32, n)
	var got atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if task := d.Steal(); task != nil {
					idx := int(task.(intTask))
					if taken[idx].Add(1) != 1 {
						t.Errorf("task %d taken more than once", idx)
						return
					}
					got.Add(1)
				}
				select {
				case <-stop:
					// Drain what remains, then quit.
					for {
						task := d.Steal()
						if task == nil {
							return
						}
						idx := int(task.(intTask))
						if taken[idx].Add(1) != 1 {
							t.Errorf("task %d taken more than once", idx)
							return
						}
						got.Add(1)
					}
				default:
				}
			}
		}()
	}

	// Owner: pushes all tasks, popping some along the way.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		d.PushBottom(intTask(i))
		if rng.Intn(3) == 0 {
			if task := d.PopBottom(); task != nil {
				idx := int(task.(intTask))
				if taken[idx].Add(1) != 1 {
					t.Fatalf("task %d taken more than once (owner)", idx)
				}
				got.Add(1)
			}
		}
	}
	// Owner drains its own side too.
	for {
		task := d.PopBottom()
		if task == nil {
			break
		}
		idx := int(task.(intTask))
		if taken[idx].Add(1) != 1 {
			t.Fatalf("task %d taken more than once (owner drain)", idx)
		}
		got.Add(1)
	}
	close(stop)
	wg.Wait()

	// Anything left after both drains (races can leave the last task to
	// either side) — the deque must now be empty and all tasks taken.
	if task := d.Steal(); task != nil {
		idx := int(task.(intTask))
		if taken[idx].Add(1) != 1 {
			t.Fatalf("task %d taken more than once (final)", idx)
		}
		got.Add(1)
	}
	if got.Load() != n {
		t.Fatalf("took %d tasks, want %d", got.Load(), n)
	}
}

func TestPoolRunsRootToCompletion(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		var ran atomic.Bool
		p.Run(func(w *Worker) {
			ran.Store(true)
		})
		if !ran.Load() {
			t.Fatalf("workers=%d: root did not run", workers)
		}
		if p.Elapsed() <= 0 {
			t.Fatalf("workers=%d: elapsed not recorded", workers)
		}
	}
}

func TestPoolFanOut(t *testing.T) {
	p := NewPool(4)
	const n = 1000
	var count atomic.Int64
	p.Run(func(w *Worker) {
		var pending atomic.Int64
		pending.Store(n)
		for i := 0; i < n; i++ {
			w.Deque().PushBottom(TaskFunc(func(w2 *Worker) {
				count.Add(1)
				pending.Add(-1)
			}))
		}
		w.WaitJoin(&pending)
	})
	if count.Load() != n {
		t.Fatalf("executed %d tasks, want %d", count.Load(), n)
	}
	s := p.Stats()
	if s.TasksExecuted < n {
		t.Fatalf("stats report %d executions, want >= %d", s.TasksExecuted, n)
	}
}

func TestStatsUtilizationBounds(t *testing.T) {
	p := NewPool(2)
	p.Run(func(w *Worker) {
		x := 0.0
		for i := 0; i < 1_000_000; i++ {
			x += float64(i)
		}
		_ = x
	})
	u := p.Stats().Utilization()
	if u < 0 || u > 1 {
		t.Fatalf("utilization %f out of [0,1]", u)
	}
}

func TestRaiseAndTakeHeartbeat(t *testing.T) {
	p := NewPool(1)
	w := p.Workers()[0]
	if w.HeartbeatPending() {
		t.Fatal("fresh worker has pending heartbeat")
	}
	if w.TakeHeartbeat() {
		t.Fatal("took a heartbeat that was never raised")
	}
	w.RaiseHeartbeat(0)
	if !w.HeartbeatPending() {
		t.Fatal("raised heartbeat not pending")
	}
	if !w.TakeHeartbeat() {
		t.Fatal("could not take pending heartbeat")
	}
	if w.HeartbeatPending() {
		t.Fatal("heartbeat still pending after take")
	}
	if w.HeartbeatsSeen != 1 {
		t.Fatalf("HeartbeatsSeen = %d, want 1", w.HeartbeatsSeen)
	}
}

func TestPushBottomBox(t *testing.T) {
	d := NewDeque()
	boxes := make([]Box, 10)
	for i := range boxes {
		boxes[i].Bind(intTask(i))
		d.PushBottomBox(&boxes[i])
	}
	for i := 9; i >= 0; i-- {
		got := d.PopBottom()
		if got == nil || int(got.(intTask)) != i {
			t.Fatalf("pop got %v, want %d", got, i)
		}
	}
}

func TestWaitJoinHelpsWithOwnTasks(t *testing.T) {
	// A single worker waiting on a join must drain its own deque to make
	// progress (help-first join).
	p := NewPool(1)
	p.Run(func(w *Worker) {
		var pending atomic.Int64
		pending.Store(3)
		for i := 0; i < 3; i++ {
			w.Deque().PushBottom(TaskFunc(func(*Worker) { pending.Add(-1) }))
		}
		w.WaitJoin(&pending)
		if pending.Load() != 0 {
			t.Error("join left pending tasks")
		}
	})
}

func TestMultiWorkerStress(t *testing.T) {
	// Fan out a two-level task tree across 4 workers and count leaves.
	const fanout = 64
	p := NewPool(4)
	var leaves atomic.Int64
	p.Run(func(w *Worker) {
		var outer atomic.Int64
		outer.Store(fanout)
		for i := 0; i < fanout; i++ {
			w.Deque().PushBottom(TaskFunc(func(w2 *Worker) {
				var inner atomic.Int64
				inner.Store(fanout)
				for j := 0; j < fanout; j++ {
					w2.Deque().PushBottom(TaskFunc(func(*Worker) {
						leaves.Add(1)
						inner.Add(-1)
					}))
				}
				w2.WaitJoin(&inner)
				outer.Add(-1)
			}))
		}
		w.WaitJoin(&outer)
	})
	if leaves.Load() != fanout*fanout {
		t.Fatalf("leaves = %d, want %d", leaves.Load(), fanout*fanout)
	}
	st := p.Stats()
	if st.TasksExecuted < fanout {
		t.Fatalf("TasksExecuted = %d", st.TasksExecuted)
	}
}

func TestSelfWorkAccounting(t *testing.T) {
	p := NewPool(1)
	p.Run(func(w *Worker) {
		w.AddSelfWork(12345)
	})
	if got := p.Stats().SelfWorkNanos; got != 12345 {
		t.Fatalf("SelfWorkNanos = %d", got)
	}
}
