package sched

import (
	"sync/atomic"
	"time"
)

// Worker is one scheduling thread of a Pool. Workers own a deque, a
// heartbeat mailbox written by an interrupt mechanism, and accounting
// counters.
//
// The heartbeat mailbox is the runtime analogue of the paper's signal
// delivery: an interrupt mechanism (internal/interrupt) raises the flag,
// and the running task observes it at the next promotion-ready program
// point (a poll site emitted in the compiled loop). The mailbox also
// carries a simulated interrupt-handler cost that the worker pays when
// it observes the flag, modeling the receive-side overhead of a Linux
// signal, a PAPI overflow interrupt, or a Nautilus IPI.
type Worker struct {
	id    int
	pool  *Pool
	deque *Deque
	rng   uint64

	hbFlag     atomic.Uint32
	hbPenalty  atomic.Int64 // simulated handler cost, nanoseconds
	beatSource BeatSource   // virtual-clock delivery model, owner-polled
	_pad       [40]byte     // keep hot heartbeat state off neighbors' lines

	// Accounting (owner-written; read after the pool stops).
	TasksExecuted  int64 // tasks run from deques (own or stolen)
	Steals         int64 // successful steals
	FailedSteals   int64
	HeartbeatsSeen int64 // heartbeat flags observed at poll sites
	PenaltyNanos   int64 // simulated handler time paid
	BusyNanos      int64 // wall time inside top-level task execution
	JoinIdleNanos  int64 // time spent in joins with nothing to help with
	SelfWorkNanos  int64 // task wall time net of join waits (cost-model work)

	execDepth int // nesting of execute (helping in joins re-enters)
	busyStart time.Time
}

// ID returns the worker's index within its pool.
func (w *Worker) ID() int { return w.id }

// Pool returns the owning pool.
func (w *Worker) Pool() *Pool { return w.pool }

// Deque returns the worker's deque.
func (w *Worker) Deque() *Deque { return w.deque }

// BeatSource is a poll-driven heartbeat delivery model: the worker asks
// it at every promotion-ready program point whether a beat fires. Only
// the owning worker calls Poll, so implementations need no internal
// synchronization for per-worker state.
type BeatSource interface {
	Poll(w *Worker) bool
}

// SetBeatSource installs (or, with nil, removes) a poll-driven delivery
// model. Interrupt mechanisms call this at Start/Stop.
func (w *Worker) SetBeatSource(s BeatSource) { w.beatSource = s }

// AddPenalty records simulated interrupt-handler time paid by this
// worker. Owner-goroutine only.
func (w *Worker) AddPenalty(nanos int64) { w.PenaltyNanos += nanos }

// AddSelfWork records a completed task's self time (wall time minus time
// spent waiting at joins), the T₁ contribution used by the at-scale
// performance model. Owner-goroutine only.
func (w *Worker) AddSelfWork(nanos int64) { w.SelfWorkNanos += nanos }

// PollHeartbeat is the promotion-ready program point's check: it
// consults the installed beat source if any, else the heartbeat flag
// raised by a thread-driven mechanism. It returns whether a beat fired,
// having already paid the receive-side cost.
func (w *Worker) PollHeartbeat() bool {
	if w.beatSource != nil {
		if w.beatSource.Poll(w) {
			w.HeartbeatsSeen++
			return true
		}
		return false
	}
	if w.hbFlag.Load() == 0 {
		return false
	}
	return w.TakeHeartbeat()
}

// RaiseHeartbeat sets the worker's heartbeat flag; the running task
// observes it at its next poll site. penaltyNanos is the simulated
// receive-side interrupt-handling cost the worker will pay on
// observation. Safe to call from any goroutine.
func (w *Worker) RaiseHeartbeat(penaltyNanos int64) {
	w.hbPenalty.Store(penaltyNanos)
	w.hbFlag.Store(1)
}

// HeartbeatPending reports whether a heartbeat is waiting, without
// consuming it. This is the fast path: one atomic load.
func (w *Worker) HeartbeatPending() bool {
	return w.hbFlag.Load() != 0
}

// TakeHeartbeat consumes a pending heartbeat, paying the simulated
// handler cost, and reports whether one was pending.
func (w *Worker) TakeHeartbeat() bool {
	if w.hbFlag.Load() == 0 {
		return false
	}
	w.hbFlag.Store(0)
	w.HeartbeatsSeen++
	if p := w.hbPenalty.Load(); p > 0 {
		w.PenaltyNanos += p
		spinFor(p)
	}
	return true
}

// spinFor busy-waits for approximately d nanoseconds, simulating work
// performed inside an interrupt handler.
func spinFor(d int64) {
	start := time.Now()
	for time.Since(start).Nanoseconds() < d {
	}
}

// nextRand is a xorshift64 step for victim selection.
func (w *Worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// Execute runs a task, maintaining busy-time accounting at the outermost
// nesting level only (helping inside joins re-enters Execute).
func (w *Worker) Execute(t Task) {
	if w.execDepth == 0 {
		w.busyStart = time.Now()
	}
	w.execDepth++
	w.TasksExecuted++
	t.Run(w)
	w.execDepth--
	if w.execDepth == 0 {
		w.BusyNanos += time.Since(w.busyStart).Nanoseconds()
	}
}

// PopOrSteal fetches work: the worker's own bottom first, then random
// victims. Returns nil when nothing was found in one sweep.
func (w *Worker) PopOrSteal() Task {
	if t := w.deque.PopBottom(); t != nil {
		return t
	}
	return w.trySteal()
}

func (w *Worker) trySteal() Task {
	n := len(w.pool.workers)
	if n <= 1 {
		return nil
	}
	// One randomized sweep over the other workers.
	offset := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := w.pool.workers[(offset+i)%n]
		if v == w {
			continue
		}
		if t := v.deque.Steal(); t != nil {
			w.Steals++
			return t
		}
	}
	w.FailedSteals++
	return nil
}

// WaitJoin participates in scheduling until the counter reaches zero:
// the classic help-first join. Time spent finding no work is recorded
// as join idle time so that utilization reflects useful work only.
func (w *Worker) WaitJoin(pending *atomic.Int64) {
	var idleStart time.Time
	idling := false
	for pending.Load() > 0 {
		if t := w.PopOrSteal(); t != nil {
			if idling {
				w.JoinIdleNanos += time.Since(idleStart).Nanoseconds()
				idling = false
			}
			w.Execute(t)
			continue
		}
		if !idling {
			idleStart = time.Now()
			idling = true
		}
		w.pool.idlePause()
	}
	if idling {
		w.JoinIdleNanos += time.Since(idleStart).Nanoseconds()
	}
}
