package sched

import (
	"sync/atomic"
	"time"

	"tpal/internal/trace"
)

// Worker is one scheduling thread of a Pool. Workers own a deque, a
// heartbeat mailbox written by an interrupt mechanism, and accounting
// counters.
//
// The heartbeat mailbox is the runtime analogue of the paper's signal
// delivery: an interrupt mechanism (internal/interrupt) raises the flag,
// and the running task observes it at the next promotion-ready program
// point (a poll site emitted in the compiled loop). The mailbox also
// carries a simulated interrupt-handler cost that the worker pays when
// it observes the flag, modeling the receive-side overhead of a Linux
// signal, a PAPI overflow interrupt, or a Nautilus IPI.
type Worker struct {
	id    int
	pool  *Pool
	deque *Deque
	rng   uint64

	hbFlag     atomic.Uint32
	hbPenalty  atomic.Int64 // simulated handler cost, nanoseconds
	beatSource BeatSource   // virtual-clock delivery model, owner-polled
	_pad       [40]byte     // keep hot heartbeat state off neighbors' lines

	// Accounting (owner-written; read after the pool stops).
	TasksExecuted  int64 // tasks run from deques (own or stolen)
	Steals         int64 // successful steals
	FailedSteals   int64
	HeartbeatsSeen int64 // heartbeat flags observed at poll sites
	PenaltyNanos   int64 // simulated handler time paid
	BusyNanos      int64 // wall time inside top-level task execution
	JoinIdleNanos  int64 // time spent in joins with nothing to help with
	SelfWorkNanos  int64 // task wall time net of join waits (cost-model work)

	execDepth int // nesting of execute (helping in joins re-enters)
	busyStart time.Time

	// tracer records typed events for this worker's lane; nil (the
	// default) disables tracing — every hook below is a branch-on-nil.
	tracer *trace.Tracer
	// stealIdle marks that the previous steal sweep failed, so further
	// failures of the same idle stretch are not re-recorded.
	stealIdle bool
}

// ID returns the worker's index within its pool.
func (w *Worker) ID() int { return w.id }

// Pool returns the owning pool.
func (w *Worker) Pool() *Pool { return w.pool }

// Deque returns the worker's deque.
func (w *Worker) Deque() *Deque { return w.deque }

// Tracer returns the worker's event tracer (nil when tracing is off).
func (w *Worker) Tracer() *trace.Tracer { return w.tracer }

// Trace records an event on this worker's trace lane. A no-op when no
// tracer is installed. Owner-goroutine only.
func (w *Worker) Trace(k trace.Kind, a, b int64) {
	w.tracer.Record(w.id, k, a, b)
}

// BeatSource is a poll-driven heartbeat delivery model: the worker asks
// it at every promotion-ready program point whether a beat fires and
// what the beat's receive-side handler cost is. Only the owning worker
// calls Poll, so implementations need no internal synchronization for
// per-worker state. The worker — not the source — pays the returned
// penalty, through the same consume-and-pay path as mailbox-delivered
// beats, so PenaltyNanos accounting is uniform across mechanisms.
type BeatSource interface {
	Poll(w *Worker) (fired bool, penaltyNanos int64)
}

// SetBeatSource installs (or, with nil, removes) a poll-driven delivery
// model. Interrupt mechanisms call this at Start/Stop.
func (w *Worker) SetBeatSource(s BeatSource) { w.beatSource = s }

// AddPenalty records simulated interrupt-handler time paid by this
// worker. Owner-goroutine only.
func (w *Worker) AddPenalty(nanos int64) { w.PenaltyNanos += nanos }

// AddSelfWork records a completed task's self time (wall time minus time
// spent waiting at joins), the T₁ contribution used by the at-scale
// performance model. Owner-goroutine only.
func (w *Worker) AddSelfWork(nanos int64) { w.SelfWorkNanos += nanos }

// PollHeartbeat is the promotion-ready program point's check: it
// consults the installed beat source if any, else the heartbeat flag
// raised by a thread-driven mechanism. It returns whether a beat fired,
// having already paid the receive-side cost: both delivery paths route
// through the same consume-and-pay helper, so HeartbeatsSeen and
// PenaltyNanos stay consistent whichever mechanism delivered the beat.
func (w *Worker) PollHeartbeat() bool {
	if s := w.beatSource; s != nil {
		fired, penalty := s.Poll(w)
		if !fired {
			return false
		}
		w.consumeBeat(penalty)
		return true
	}
	if w.hbFlag.Load() == 0 {
		return false
	}
	return w.TakeHeartbeat()
}

// RaiseHeartbeat sets the worker's heartbeat flag; the running task
// observes it at its next poll site. penaltyNanos is the simulated
// receive-side interrupt-handling cost the worker will pay on
// observation. Safe to call from any goroutine.
func (w *Worker) RaiseHeartbeat(penaltyNanos int64) {
	w.hbPenalty.Store(penaltyNanos)
	w.hbFlag.Store(1)
	w.tracer.RecordExternal(trace.EvBeatRaise, int64(w.id), penaltyNanos)
}

// HeartbeatPending reports whether a heartbeat is waiting, without
// consuming it. This is the fast path: one atomic load.
func (w *Worker) HeartbeatPending() bool {
	return w.hbFlag.Load() != 0
}

// takeSeam, when non-nil, runs between the flag consume and the penalty
// read inside TakeHeartbeat. Tests use it to pin the exact interleaving
// of a concurrent RaiseHeartbeat against an in-flight take; it is nil
// outside tests.
var takeSeam func(*Worker)

// TakeHeartbeat consumes a pending heartbeat, paying the simulated
// handler cost, and reports whether one was pending. Both the flag and
// the penalty are consumed with Swap so that a RaiseHeartbeat racing
// with an in-flight take can never have its penalty paid twice: whoever
// swaps the penalty out pays it, exactly once, and a later take of the
// re-raised flag finds zero.
func (w *Worker) TakeHeartbeat() bool {
	if w.hbFlag.Swap(0) == 0 {
		return false
	}
	if takeSeam != nil {
		takeSeam(w)
	}
	w.consumeBeat(w.hbPenalty.Swap(0))
	return true
}

// consumeBeat is the single consume-and-pay path for an observed
// heartbeat, whatever mechanism delivered it: it counts the beat, pays
// the receive-side handler cost (accounted and busy-waited, as a signal
// handler's time would be), and records the trace events.
// Owner-goroutine only.
func (w *Worker) consumeBeat(penaltyNanos int64) {
	w.HeartbeatsSeen++
	w.Trace(trace.EvBeatObserve, penaltyNanos, 0)
	if penaltyNanos > 0 {
		w.PenaltyNanos += penaltyNanos
		spinFor(penaltyNanos)
		w.Trace(trace.EvBeatPenalty, penaltyNanos, 0)
	}
}

// spinFor busy-waits for approximately d nanoseconds, simulating work
// performed inside an interrupt handler.
func spinFor(d int64) {
	start := time.Now()
	for time.Since(start).Nanoseconds() < d {
	}
}

// nextRand is a xorshift64 step for victim selection.
func (w *Worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// Execute runs a task, maintaining busy-time accounting at the outermost
// nesting level only (helping inside joins re-enters Execute).
func (w *Worker) Execute(t Task) {
	if w.execDepth == 0 {
		w.busyStart = time.Now()
	}
	w.execDepth++
	w.TasksExecuted++
	w.Trace(trace.EvTaskStart, int64(w.execDepth), 0)
	t.Run(w)
	w.Trace(trace.EvTaskEnd, int64(w.execDepth), 0)
	w.execDepth--
	if w.execDepth == 0 {
		w.BusyNanos += time.Since(w.busyStart).Nanoseconds()
	}
}

// PopOrSteal fetches work: the worker's own bottom first, then random
// victims. Returns nil when nothing was found in one sweep.
func (w *Worker) PopOrSteal() Task {
	if t := w.deque.PopBottom(); t != nil {
		w.stealIdle = false
		return t
	}
	return w.trySteal()
}

func (w *Worker) trySteal() Task {
	n := len(w.pool.workers)
	if n <= 1 {
		return nil
	}
	// One randomized sweep over the other workers.
	offset := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := w.pool.workers[(offset+i)%n]
		if v == w {
			continue
		}
		if t := v.deque.Steal(); t != nil {
			w.Steals++
			w.stealIdle = false
			w.Trace(trace.EvSteal, int64(v.id), 0)
			return t
		}
	}
	w.FailedSteals++
	if !w.stealIdle {
		// First failed sweep of an idle stretch: record once, not per
		// spin, so an idle worker cannot flood its own ring.
		w.stealIdle = true
		w.Trace(trace.EvStealFail, int64(n-1), 0)
	}
	return nil
}

// WaitJoin participates in scheduling until the counter reaches zero:
// the classic help-first join. Time spent finding no work is recorded
// as join idle time so that utilization reflects useful work only.
func (w *Worker) WaitJoin(pending *atomic.Int64) {
	var idleStart time.Time
	idling := false
	w.Trace(trace.EvJoinBegin, 0, 0)
	for pending.Load() > 0 {
		if t := w.PopOrSteal(); t != nil {
			if idling {
				w.JoinIdleNanos += time.Since(idleStart).Nanoseconds()
				idling = false
			}
			w.Execute(t)
			continue
		}
		if !idling {
			idleStart = time.Now()
			idling = true
		}
		w.pool.idlePause()
	}
	if idling {
		w.JoinIdleNanos += time.Since(idleStart).Nanoseconds()
	}
	w.Trace(trace.EvJoinEnd, 0, 0)
}
