package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"tpal/internal/tpal/programs"
)

// TestRetryAfterSeconds pins the 429 Retry-After math: expected drain
// time is queue depth × median execution time spread over the worker
// pool, ceiled to whole seconds, clamped to [1, 60]. (The original
// handler hardcoded 1 second regardless of backlog.)
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		depth   int
		p50MS   float64
		workers int
		want    int
	}{
		{0, 500, 4, 1},       // empty queue: floor
		{10, 0, 4, 1},        // no execution history yet: floor
		{10, 2000, 4, 5},     // 10×2s over 4 workers = 5s
		{10, 2000, 1, 20},    // one worker drains serially
		{7, 300, 2, 2},       // 2.1s/2 → ceil(1.05) = 2
		{1, 1, 8, 1},         // sub-second estimate: floor
		{100000, 5000, 2, 60}, // absurd backlog: capped
		{-3, 1000, 2, 1},     // defensive: negative depth clamps
		{5, 1000, 0, 5},      // defensive: zero workers treated as one
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.depth, c.p50MS, c.workers); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %v, %d) = %d, want %d",
				c.depth, c.p50MS, c.workers, got, c.want)
		}
	}
}

// TestRetryAfterHeader checks the live header on a real 429: a wedged
// single-worker service with a full queue must send a parseable
// Retry-After in the valid range.
func TestRetryAfterHeader(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	running := make(chan struct{})
	var once sync.Once
	s.setRunningHook(func(*Job) {
		once.Do(func() { close(running) })
		<-release
	})
	defer close(release)

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	submit := func(b int64) *http.Response {
		buf, _ := json.Marshal(SubmitRequest{
			Tenant: "alice",
			Source: programs.ProdSource,
			Args:   map[string]int64{"a": 4, "b": b},
		})
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := submit(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d, want 202", resp.StatusCode)
	}
	<-running // worker wedged on job 1; queue is empty again
	if resp := submit(2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d, want 202", resp.StatusCode)
	}
	resp := submit(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
	}
	if secs < 1 || secs > 60 {
		t.Errorf("Retry-After = %d, want within [1, 60]", secs)
	}
}
