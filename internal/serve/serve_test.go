package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"tpal/internal/tpal/programs"
)

// racySrc seeds a definite TP060 write/write race: both sides of the
// fork store to cell 0 of the shared pre-fork stack.
const racySrc = `
program racy entry main

block main [.] {
  sp := snew
  salloc sp, 2
  jr := jralloc after
  fork jr, body
  mem[sp + 0] := 1
  join jr
}

block body [.] {
  mem[sp + 0] := 2
  join jr
}

block after [jtppt assoc-comm; {}; comb] {
  halt
}

block comb [.] {
  join jr
}
`

// unboundedSrc uses the promotion machinery (the entry block is
// promotion-ready) but then enters a loop that never crosses a
// promotion-ready point: the liveness pass grades it LatencyUnbounded
// and pins TP050 on the loop — a task that could starve the shared
// pool's heartbeat scheduler forever.
const unboundedSrc = `
program spin entry main

block main [prppt hb] {
  x := 0
  jump loop
}

block hb [.] {
  jump loop
}

block loop [.] {
  x := x + 1
  jump loop
}
`

// newTestService builds a service with small, test-friendly knobs.
func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s
}

func await(t *testing.T, j *Job) JobView {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", j.ID)
	}
	return jobView(t, j)
}

func jobView(t *testing.T, j *Job) JobView {
	t.Helper()
	// Reading without the service lock is safe here: await only calls
	// this after Done, and close(done) happens after the last write to
	// the job under the lock.
	return j.view()
}

func TestSubmitValidProgramCompletes(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	j, err := s.Submit(SubmitRequest{
		Tenant: "alice",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 21, "b": 2},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := await(t, j)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s), want done", v.Status, v.Error)
	}
	if v.Result["c"] != "42" {
		t.Errorf("c = %q, want 42", v.Result["c"])
	}
	if v.Stats == nil || v.Stats.Steps == 0 {
		t.Errorf("stats missing from completed job: %+v", v.Stats)
	}
	if v.Quote.Budget <= 0 {
		t.Errorf("admitted job has no budget: %+v", v.Quote)
	}
}

func TestAdmissionRejectsRace(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	j, err := s.Submit(SubmitRequest{Tenant: "mallory", Source: racySrc})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.Status != StatusRejected {
		t.Fatalf("status = %s, want rejected", j.Status)
	}
	if !hasCode(j.Diags, "TP060") {
		t.Errorf("rejection diags %+v carry no TP060", j.Diags)
	}
}

func TestAdmissionRejectsUnboundedLatency(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	j, err := s.Submit(SubmitRequest{Tenant: "mallory", Source: unboundedSrc})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.Status != StatusRejected {
		t.Fatalf("status = %s, want rejected", j.Status)
	}
	if !hasCode(j.Diags, "TP050") {
		t.Errorf("rejection diags %+v carry no TP050", j.Diags)
	}
}

// divergentSrc is statically divergent: once the loop is entered no
// exit edge is feasible and the region never halts or joins, so the
// interval/trip pass condemns it with TP090 (an Error) and the gate
// rejects it before any fuel is granted.
const divergentSrc = `
program div entry main

block main [.] {
  x := 0
  jump loop
}

block loop [.] {
  x := x + 1
  jump loop
}
`

// boundedSrc is a constant-bounded countdown: the trip pass proves
// loop runs exactly 6 times, so the quote prices it from the proved
// bound with provenance "inferred" instead of assuming TripAssume. The
// loop header is promotion-ready (with a decline-everything handler)
// so the latency gate stays happy.
const boundedSrc = `
program bounded entry main

block main [.] {
  i := 5
  jump loop
}

block loop [prppt hb] {
  t := i == 0
  if-jump t, done
  i := i - 1
  jump loop
}

block hb [.] {
  jump loop
}

block done [.] {
  halt
}
`

func TestAdmissionRejectsDivergentLoop(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	j, err := s.Submit(SubmitRequest{Tenant: "mallory", Source: divergentSrc})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.Status != StatusRejected {
		t.Fatalf("status = %s, want rejected", j.Status)
	}
	if !hasCode(j.Diags, "TP090") {
		t.Errorf("rejection diags %+v carry no TP090", j.Diags)
	}
}

func TestQuotePricesInferredTrips(t *testing.T) {
	// MinBudget 1 exposes the raw margin math; TripAssume is set
	// absurdly high so any fallback to it would blow the assertion.
	s := newTestService(t, Config{
		Workers:          1,
		MinBudget:        1,
		TripAssume:       1 << 20,
		DisableOptimizer: true,
	})
	j, err := s.Submit(SubmitRequest{Tenant: "alice", Source: boundedSrc})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	tq, ok := j.Quote.Trips["loop"]
	if !ok {
		t.Fatalf("quote has no trip entry for loop: %+v", j.Quote)
	}
	if tq.Source != "inferred" || tq.Count != 6 {
		t.Errorf("loop priced as %+v, want {Count:6 Source:inferred}", tq)
	}
	if j.Quote.EstSteps <= 0 || j.Quote.EstSteps >= 100 {
		t.Errorf("est_steps = %d, want a small fully-numeric estimate", j.Quote.EstSteps)
	}
	if want := j.Quote.EstSteps * s.cfg.QuoteMargin; j.Quote.Budget != want {
		t.Errorf("budget = %d, want est*margin = %d", j.Quote.Budget, want)
	}
	v := await(t, j)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s), want done — an inferred quote must cover the real run", v.Status, v.Error)
	}
}

func TestQuoteAssumedTripsProvenance(t *testing.T) {
	// prod's loop count is an entry register, so its trip is unknowable
	// statically and the quote must say so.
	s := newTestService(t, Config{Workers: 1, DisableOptimizer: true})
	j, err := s.Submit(SubmitRequest{
		Tenant: "alice",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 3, "b": 4},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(j.Quote.Trips) == 0 {
		t.Fatalf("quote has no trip provenance: %+v", j.Quote)
	}
	for h, tq := range j.Quote.Trips {
		if tq.Source != "assumed" || tq.Count != s.cfg.TripAssume {
			t.Errorf("header %s priced as %+v, want assumed TripAssume=%d", h, tq, s.cfg.TripAssume)
		}
	}
	v := await(t, j)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s), want done", v.Status, v.Error)
	}
}

func TestBadSourceIsBadRequest(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	_, err := s.Submit(SubmitRequest{Source: "block { nonsense"})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

func TestBudgetExceededJob(t *testing.T) {
	// Quote knobs tuned so prod's estimate lands on the budget floor,
	// then ask for vastly more work than the floor covers.
	s := newTestService(t, Config{
		Workers:    1,
		TripAssume: 64,
		MinBudget:  20_000,
		FuelCap:    1_000_000,
	})
	// prod iterates a times (r += b per pass), so a huge a is the hog.
	j, err := s.Submit(SubmitRequest{
		Tenant: "hog",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 50_000_000, "b": 1},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := await(t, j)
	if v.Status != StatusBudget {
		t.Fatalf("status = %s (%s), want budget_exceeded", v.Status, v.Error)
	}
}

func TestExplicitFuelLowersBudget(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	j, err := s.Submit(SubmitRequest{
		Tenant: "frugal",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 1_000_000, "b": 1},
		Fuel:   500,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.Quote.Budget != 500 {
		t.Fatalf("budget = %d, want the requested 500", j.Quote.Budget)
	}
	v := await(t, j)
	if v.Status != StatusBudget {
		t.Fatalf("status = %s (%s), want budget_exceeded", v.Status, v.Error)
	}
}

func TestTimeoutJob(t *testing.T) {
	// A genuinely long run (budget floor raised well past what 50ms
	// covers) against a tiny deadline, so the deadline fires first.
	s := newTestService(t, Config{
		Workers:   1,
		FuelCap:   1 << 40,
		MinBudget: 1 << 40,
	})
	j, err := s.Submit(SubmitRequest{
		Tenant:    "slow",
		Source:    programs.ProdSource,
		Args:      map[string]int64{"a": 1 << 40, "b": 1},
		TimeoutMS: 50,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := await(t, j)
	if v.Status != StatusTimeout {
		t.Fatalf("status = %s (%s), want timeout", v.Status, v.Error)
	}
}

func TestResultCacheHit(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	req := SubmitRequest{
		Tenant: "alice",
		Source: programs.PowSource,
		Args:   map[string]int64{"d": 2, "e": 5},
	}
	j1, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	v1 := await(t, j1)
	if v1.Status != StatusDone || v1.Cached {
		t.Fatalf("first run: status %s cached %v, want a fresh done", v1.Status, v1.Cached)
	}

	j2, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	v2 := await(t, j2)
	if v2.Status != StatusDone || !v2.Cached {
		t.Fatalf("second run: status %s cached %v, want a cache hit", v2.Status, v2.Cached)
	}
	if v1.Result["f"] != v2.Result["f"] {
		t.Errorf("cached result %q differs from fresh %q", v2.Result["f"], v1.Result["f"])
	}

	// Different args must miss.
	j3, err := s.Submit(SubmitRequest{
		Tenant: "alice",
		Source: programs.PowSource,
		Args:   map[string]int64{"d": 2, "e": 6},
	})
	if err != nil {
		t.Fatalf("Submit 3: %v", err)
	}
	if v3 := await(t, j3); v3.Cached {
		t.Errorf("different args hit the result cache")
	}

	snap := s.Snapshot()
	if snap.ResultHits != 1 {
		t.Errorf("result cache hits = %d, want 1", snap.ResultHits)
	}
	if snap.AnalysisHits < 2 {
		t.Errorf("analysis cache hits = %d, want >= 2 (same program re-admitted twice)", snap.AnalysisHits)
	}
}

func TestAnalysisCacheKeyedByEntrySet(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	p, _, err := loadSource("tpal", programs.ProdSource)
	if err != nil {
		t.Fatal(err)
	}
	a1 := s.admit(p, nil)
	a2 := s.admit(p, nil)
	if a1 != a2 {
		t.Errorf("same (program, entry) pair was re-analyzed")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := newTestService(t, Config{Workers: 1, QueueCap: 2})
	s.setRunningHook(func(*Job) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})
	defer close(release)

	submit := func(b int64) (*Job, error) {
		return s.Submit(SubmitRequest{
			Tenant: "flood",
			Source: programs.ProdSource,
			Args:   map[string]int64{"a": 1, "b": b},
		})
	}
	// First job occupies the lone worker...
	if _, err := submit(2); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	<-started
	// ...two more fill the queue...
	if _, err := submit(3); err != nil {
		t.Fatalf("fill 1: %v", err)
	}
	if _, err := submit(4); err != nil {
		t.Fatalf("fill 2: %v", err)
	}
	// ...and the next bounces.
	if _, err := submit(5); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if snap := s.Snapshot(); snap.Throttled != 1 {
		t.Errorf("throttled = %d, want 1", snap.Throttled)
	}
}

// TestDRRFairness drives the queue directly: tenant A's backlog of
// cheap jobs must interleave with tenant B's instead of being served
// strictly first-come-first-served.
func TestDRRFairness(t *testing.T) {
	q := newDRRQueue(100)
	mk := func(tenant string, cost int64) *Job {
		return &Job{Tenant: tenant, cost: cost}
	}
	for i := 0; i < 5; i++ {
		q.push(mk("a", 100))
	}
	for i := 0; i < 5; i++ {
		q.push(mk("b", 100))
	}
	var order []string
	for j := q.pop(); j != nil; j = q.pop() {
		order = append(order, j.Tenant)
	}
	want := []string{"a", "b", "a", "b", "a", "b", "a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want strict alternation %v", order, want)
		}
	}
}

// TestDRRCostWeighting: a tenant submitting jobs 4× as expensive gets
// dispatched 4× less often — costs, not job counts, meter the pool.
func TestDRRCostWeighting(t *testing.T) {
	q := newDRRQueue(100)
	for i := 0; i < 3; i++ {
		q.push(&Job{Tenant: "heavy", cost: 400})
	}
	for i := 0; i < 8; i++ {
		q.push(&Job{Tenant: "light", cost: 100})
	}
	var order []string
	for j := q.pop(); j != nil; j = q.pop() {
		order = append(order, j.Tenant)
	}
	// In any window where both tenants are backlogged, light should get
	// roughly 4 dispatches per heavy one. Count lights before the
	// second heavy job.
	lights := 0
	heavies := 0
	for _, tn := range order {
		if tn == "heavy" {
			heavies++
			if heavies == 2 {
				break
			}
		} else {
			lights++
		}
	}
	if lights < 3 {
		t.Fatalf("only %d light jobs ran before the second heavy one (order %v)", lights, order)
	}
}

// TestConcurrentSubmitters hammers Submit from many goroutines; the
// assertions are about accounting (every accepted job terminates, and
// the metrics add up), and the -race build checks the locking.
func TestConcurrentSubmitters(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueCap: 1024})
	const n = 60
	var wg sync.WaitGroup
	jobs := make(chan *Job, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(SubmitRequest{
				Tenant: []string{"a", "b", "c"}[i%3],
				Source: programs.ProdSource,
				Args:   map[string]int64{"a": int64(i), "b": int64(i%7 + 1)},
			})
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			jobs <- j
		}(i)
	}
	wg.Wait()
	close(jobs)
	for j := range jobs {
		if v := await(t, j); v.Status != StatusDone {
			t.Errorf("job %s: status %s (%s)", v.ID, v.Status, v.Error)
		}
	}
	snap := s.Snapshot()
	if snap.Completed != n {
		t.Errorf("completed = %d, want %d", snap.Completed, n)
	}
}

func hasCode(ds []Diag, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}
