//go:build !race

package serve

// raceDetectorOn reports whether this test binary was built with the
// race detector — the canonical mode for `make serve-test`, and the
// only mode allowed to rewrite BENCH_serve.json (see loadsmoke_test.go).
const raceDetectorOn = false
