package serve

import (
	"sync"
	"testing"

	"tpal/internal/tpal/programs"
)

// TestSingleflightCollapsesConcurrentDuplicates proves that N
// concurrent identical submissions run once: the first becomes the
// singleflight primary, the rest coalesce onto it, and all inherit one
// execution's result. (Before the singleflight registry, each
// concurrent duplicate executed independently — the result store only
// collapses duplicates that arrive after the first run finished.)
func TestSingleflightCollapsesConcurrentDuplicates(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueCap: 64})

	// Wedge the lone worker inside the primary's execution so the
	// duplicates demonstrably arrive while it is in flight.
	release := make(chan struct{})
	running := make(chan struct{})
	var once sync.Once
	s.setRunningHook(func(*Job) {
		once.Do(func() { close(running) })
		<-release
	})

	req := SubmitRequest{
		Tenant: "alice",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 21, "b": 2},
	}
	primary, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit primary: %v", err)
	}
	<-running // the primary is wedged in execution now

	const dups = 8
	followers := make([]*Job, dups)
	var wg sync.WaitGroup
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := s.Submit(req)
			if err != nil {
				t.Errorf("Submit duplicate %d: %v", i, err)
				return
			}
			followers[i] = j
		}()
	}
	wg.Wait()
	s.setRunningHook(nil)
	close(release)

	v := await(t, primary)
	if v.Status != StatusDone || v.Result["c"] != "42" {
		t.Fatalf("primary: status %s result %v", v.Status, v.Result)
	}
	for i, f := range followers {
		if f == nil {
			continue
		}
		fv := await(t, f)
		if fv.Status != StatusDone {
			t.Errorf("follower %d: status = %s (%s), want done", i, fv.Status, fv.Error)
		}
		if fv.Result["c"] != "42" {
			t.Errorf("follower %d: c = %q, want 42", i, fv.Result["c"])
		}
		if !fv.Coalesced {
			t.Errorf("follower %d not marked coalesced", i)
		}
	}

	m := s.Snapshot()
	if m.Executions != 1 {
		t.Errorf("Executions = %d, want exactly 1 for %d identical submissions", m.Executions, dups+1)
	}
	if m.SingleflightCollapses != dups {
		t.Errorf("SingleflightCollapses = %d, want %d", m.SingleflightCollapses, dups)
	}
	if m.Completed != dups+1 {
		t.Errorf("Completed = %d, want %d (every submission reaches done)", m.Completed, dups+1)
	}
}

// TestSingleflightBudgetMismatchDoesNotCoalesce: a duplicate that
// lowered its own fuel below the primary's budget must not ride the
// primary's execution — its outcome could legitimately differ.
func TestSingleflightBudgetMismatchDoesNotCoalesce(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueCap: 64})
	release := make(chan struct{})
	running := make(chan struct{})
	var once sync.Once
	s.setRunningHook(func(*Job) {
		once.Do(func() { close(running) })
		<-release
	})

	req := SubmitRequest{
		Tenant: "alice",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 21, "b": 2},
	}
	primary, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit primary: %v", err)
	}
	<-running

	starved := req
	starved.Fuel = 1 // below any quote: must execute (and fail) on its own
	follower, err := s.Submit(starved)
	if err != nil {
		t.Fatalf("Submit starved duplicate: %v", err)
	}
	if follower.Coalesced {
		t.Fatalf("budget-mismatched duplicate was coalesced")
	}
	s.setRunningHook(nil)
	close(release)

	if v := await(t, primary); v.Status != StatusDone {
		t.Fatalf("primary: %s (%s)", v.Status, v.Error)
	}
	if v := await(t, follower); v.Status != StatusBudget {
		t.Errorf("starved duplicate: status = %s, want budget_exceeded", v.Status)
	}
	if m := s.Snapshot(); m.SingleflightCollapses != 0 {
		t.Errorf("SingleflightCollapses = %d, want 0", m.SingleflightCollapses)
	}
}
