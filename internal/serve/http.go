package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"tpal/internal/stats"
	"tpal/internal/tpal"
	"tpal/internal/tpal/analysis"
)

// AnalyzeRequest is the body of POST /v1/analyze: lint-as-a-service.
type AnalyzeRequest struct {
	Lang   string   `json:"lang"`
	Source string   `json:"source"`
	Entry  []string `json:"entry"`
}

// AnalyzeResponse is the full static report for one program.
type AnalyzeResponse struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Admissible  bool   `json:"admissible"`
	Reason      string `json:"reason,omitempty"`
	Diags       []Diag `json:"diags"`
	Latency     string `json:"latency"`
	Work        string `json:"work"`
	Span        string `json:"span"`
	Quote       *Quote `json:"quote,omitempty"`
}

// errorBody is the uniform error payload: a message plus, for
// admission rejections, the structured diagnostics.
type errorBody struct {
	Error string `json:"error"`
	Diags []Diag `json:"diags,omitempty"`
	JobID string `json:"job_id,omitempty"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs             submit a job  (202 queued / done; 422 rejected;
//	                          429 queue full; 503 draining; 400 bad request)
//	GET  /v1/jobs/{id}        job status, result, stats (404 unknown)
//	GET  /v1/jobs/{id}/events live job event stream over SSE: status
//	                          transitions and, for traced jobs, batches
//	                          of tracer events; ends with a "done" frame
//	                          carrying the full job view
//	POST /v1/analyze          run the analysis pipeline without executing
//	GET  /healthz             200 serving / 503 draining
//	GET  /metrics             counters, queue depth, latency percentiles
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad JSON: " + err.Error()})
		return
	}
	// ?trace=1 is the query-parameter form of the body's "trace" field;
	// either turns on per-job event tracing.
	if v := r.URL.Query().Get("trace"); v == "1" || v == "true" {
		req.Trace = true
	}
	j, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	view, _ := s.JobView(j.ID)
	if view.Status == StatusRejected {
		// The structured diagnostics are the contract: clients match on
		// TP0xx codes exactly as they would on tpal-lint -json output.
		writeJSON(w, http.StatusUnprocessableEntity, view)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.JobView(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleJobEvents serves GET /v1/jobs/{id}/events: the job's event
// history replayed as SSE frames, then the live feed until the job
// reaches a terminal state, then one final "done" frame carrying the
// full job view. Frames are `event: <kind>` + `data: <json>`; clients
// can stop reading at the first done frame.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	replay, live, cancel, ok := s.subscribeJob(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeFrame := func(ev jobEvent) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, ev.json())
		fl.Flush()
	}
	for _, ev := range replay {
		writeFrame(ev)
	}
	for live != nil {
		select {
		case ev, open := <-live:
			if !open {
				live = nil
				break
			}
			writeFrame(ev)
		case <-r.Context().Done():
			return
		}
	}
	// The live channel closed (or was never opened): the job is
	// terminal. Re-read the record for the full final view.
	view, ok := s.JobView(id)
	if !ok {
		return
	}
	buf, err := json.Marshal(view)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", eventKindDone, buf)
	fl.Flush()
}

// retryAfter derives the 429 Retry-After hint from live service state:
// the current queue depth times the recent median execution time,
// spread over the worker pool.
func (s *Service) retryAfter() int {
	s.mu.Lock()
	depth := s.queuedN
	p50 := stats.Percentile(s.metrics.exec.values(), 50)
	s.mu.Unlock()
	return retryAfterSeconds(depth, p50, s.cfg.Workers)
}

// retryAfterSeconds is the header math: ceil(depth × p50 / workers),
// clamped to [1s, 60s]. With no execution history yet the estimate
// degrades to the floor.
func retryAfterSeconds(depth int, execP50MS float64, workers int) int {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	secs := int(math.Ceil(float64(depth) * execP50MS / float64(workers) / 1000))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad JSON: " + err.Error()})
		return
	}
	prog, params, err := loadSource(req.Lang, req.Source)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	entry := params
	for _, k := range req.Entry {
		entry = append(entry, tpal.Reg(k))
	}
	// The report itself (not just the cached admission verdict) is
	// what analyze clients want, so run the pipeline directly; the
	// admission cache still accelerates subsequent submissions of the
	// same program.
	report := analysis.Analyze(prog, analysis.Options{EntryRegs: entry, Races: true})
	adm := s.admit(prog, entry)
	resp := AnalyzeResponse{
		Name:        prog.Name,
		Fingerprint: adm.fingerprint,
		Admissible:  !adm.rejected,
		Reason:      adm.reason,
		Diags:       wireDiags(report.Diags),
		Latency:     report.Latency.String(),
		Work:        report.Work.String(),
		Span:        report.Span.String(),
	}
	if !adm.rejected {
		q := adm.quote
		resp.Quote = &q
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
