package serve

import (
	"encoding/json"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpal/internal/stats"
	"tpal/internal/tpal/machine"
	"tpal/internal/tpal/programs"
)

// benchServeRun is one backend's load result inside BENCH_serve.json.
type benchServeRun struct {
	Throttled      int64   `json:"throttled"`
	WallMS         float64 `json:"wall_ms"`
	ThroughputJobS float64 `json:"throughput_jobs_per_sec"`
	SubmitP50US    float64 `json:"submit_p50_us"`
	SubmitP99US    float64 `json:"submit_p99_us"`
	TurnP50MS      float64 `json:"turnaround_p50_ms"`
	TurnP99MS      float64 `json:"turnaround_p99_ms"`
	ResultHits     int64   `json:"result_cache_hits"`
	Compiles       int64   `json:"compiles,omitempty"`
	CompileHits    int64   `json:"compile_cache_hits,omitempty"`
	CompiledRuns   int64   `json:"compiled_runs,omitempty"`
}

// benchServe is the schema of BENCH_serve.json: a smoke-level load
// result for the service on each execution backend, comparable across
// commits. RaceDetector records the measurement mode: the file is only
// ever written from a `-race` build (`make serve-test`), so the
// numbers stay comparable.
type benchServe struct {
	Submissions  int           `json:"submissions"`
	RaceDetector bool          `json:"race_detector"`
	Workers      int           `json:"workers"`
	QueueCap     int           `json:"queue_cap"`
	Interp       benchServeRun `json:"interp"`
	Compiled     benchServeRun `json:"compiled"`
}

const (
	smokeSubmissions = 240
	smokeWorkers     = 4
	smokeQueueCap    = 16 // small on purpose: the burst must hit backpressure
)

// driveLoad pushes smokeSubmissions concurrent submissions from many
// tenants through a deliberately small queue on the given backend and
// returns throughput and latency percentiles. Throttled submissions
// retry, so every job eventually lands: full completion is asserted,
// which exercises backpressure, DRR fairness, and the result cache
// together under load.
func driveLoad(t *testing.T, backend machine.Backend) benchServeRun {
	t.Helper()
	s := newTestService(t, Config{
		Workers:    smokeWorkers,
		QueueCap:   smokeQueueCap,
		TripAssume: 64,
		Backend:    backend,
	})

	tenantNames := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	var (
		mu          sync.Mutex
		submitUS    []float64
		turnMS      []float64
		completed   atomic.Int64
		throttled   atomic.Int64
		failedJobs  atomic.Int64
		otherErrors atomic.Int64
	)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < smokeSubmissions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A spread of argument values keeps most submissions distinct
			// while leaving enough repeats for the result cache to matter.
			req := SubmitRequest{
				Tenant: tenantNames[i%len(tenantNames)],
				Source: programs.ProdSource,
				Args:   map[string]int64{"a": int64(i%40 + 1), "b": 3},
			}
			born := time.Now()
			var j *Job
			for {
				t0 := time.Now()
				var err error
				j, err = s.Submit(req)
				elapsed := time.Since(t0)
				if err == nil {
					mu.Lock()
					submitUS = append(submitUS, float64(elapsed.Microseconds()))
					mu.Unlock()
					break
				}
				if errors.Is(err, ErrQueueFull) {
					throttled.Add(1)
					time.Sleep(time.Millisecond)
					continue
				}
				otherErrors.Add(1)
				return
			}
			select {
			case <-j.Done():
			case <-time.After(60 * time.Second):
				failedJobs.Add(1)
				return
			}
			v := j.view()
			if v.Status != StatusDone {
				failedJobs.Add(1)
				return
			}
			completed.Add(1)
			mu.Lock()
			turnMS = append(turnMS, float64(time.Since(born).Microseconds())/1000)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	if n := otherErrors.Load(); n > 0 {
		t.Fatalf("%s: %d submissions failed with unexpected errors", backend, n)
	}
	if n := failedJobs.Load(); n > 0 {
		t.Fatalf("%s: %d jobs did not complete successfully", backend, n)
	}
	if got := completed.Load(); got != smokeSubmissions {
		t.Fatalf("%s: completed %d of %d submissions", backend, got, smokeSubmissions)
	}

	snap := s.Snapshot()
	run := benchServeRun{
		Throttled:      snap.Throttled,
		WallMS:         float64(wall.Microseconds()) / 1000,
		ThroughputJobS: float64(smokeSubmissions) / wall.Seconds(),
		SubmitP50US:    stats.Percentile(submitUS, 50),
		SubmitP99US:    stats.Percentile(submitUS, 99),
		TurnP50MS:      stats.Percentile(turnMS, 50),
		TurnP99MS:      stats.Percentile(turnMS, 99),
		ResultHits:     snap.ResultHits,
		Compiles:       snap.Compiles,
		CompileHits:    snap.CompileCacheHits,
		CompiledRuns:   snap.CompiledRuns,
	}
	t.Logf("load smoke (%s): %d jobs in %v (%.0f jobs/s, %d throttled, %d cache hits)",
		backend, smokeSubmissions, wall.Round(time.Millisecond), run.ThroughputJobS, snap.Throttled, snap.ResultHits)
	return run
}

// TestLoadSmoke drives the burst on both execution backends and records
// each backend's walls as separate fields in BENCH_serve.json at the
// repo root. The file is only written when the race detector is on
// (`make serve-test`), so numbers stay comparable across commits; plain
// `go test` runs still drive the load but leave the file alone.
func TestLoadSmoke(t *testing.T) {
	interp := driveLoad(t, machine.BackendInterp)
	compiled := driveLoad(t, machine.BackendCompiled)

	// The compiled service must have lowered the one distinct program
	// fingerprint exactly once and run every cache-missed job on it.
	if compiled.Compiles != 1 {
		t.Errorf("compiled smoke: Compiles = %d, want 1", compiled.Compiles)
	}
	if compiled.CompiledRuns == 0 {
		t.Error("compiled smoke: no jobs executed on the compiled backend")
	}

	// BENCH_serve.json exists to be compared across commits, so it is
	// only ever written from the canonical measurement mode: a `-race`
	// build, i.e. `make serve-test`. A plain `go test ./...` run is an
	// order of magnitude faster and would silently replace the baseline
	// with incomparable numbers.
	if !raceDetectorOn {
		t.Log("race detector off: exercising the service only, not rewriting BENCH_serve.json")
		return
	}

	// In the canonical mode the burst must actually hit the queue cap,
	// or the recorded run never exercised backpressure or DRR fairness
	// and its numbers are meaningless as a load benchmark.
	if interp.Throttled == 0 || compiled.Throttled == 0 {
		t.Fatalf("burst never hit the queue cap (interp %d, compiled %d throttled): shrink QueueCap or grow the burst so the benchmark exercises backpressure",
			interp.Throttled, compiled.Throttled)
	}

	report := benchServe{
		Submissions:  smokeSubmissions,
		RaceDetector: raceDetectorOn,
		Workers:      smokeWorkers,
		QueueCap:     smokeQueueCap,
		Interp:       interp,
		Compiled:     compiled,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile("../../BENCH_serve.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatalf("write BENCH_serve.json: %v", err)
	}
}
