package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpal/internal/stats"
	"tpal/internal/tpal/machine"
	"tpal/internal/tpal/programs"
)

// benchServeRun is one backend's load result inside BENCH_serve.json.
type benchServeRun struct {
	Throttled      int64   `json:"throttled"`
	WallMS         float64 `json:"wall_ms"`
	ThroughputJobS float64 `json:"throughput_jobs_per_sec"`
	SubmitP50US    float64 `json:"submit_p50_us"`
	SubmitP99US    float64 `json:"submit_p99_us"`
	TurnP50MS      float64 `json:"turnaround_p50_ms"`
	TurnP99MS      float64 `json:"turnaround_p99_ms"`
	Executions     int64   `json:"executions"`
	Steals         int64   `json:"steals"`
	Singleflight   int64   `json:"singleflight_collapses"`
	ResultHits     int64   `json:"result_cache_hits"`
	Evictions      int64   `json:"result_evictions"`
	JobsEvicted    int64   `json:"jobs_evicted"`
	Compiles       int64   `json:"compiles,omitempty"`
	CompileHits    int64   `json:"compile_cache_hits,omitempty"`
	CompiledRuns   int64   `json:"compiled_runs,omitempty"`
}

// benchServe is the schema of BENCH_serve.json: a smoke-level load
// result for the service on each execution backend, comparable across
// commits. RaceDetector records the measurement mode: the file is only
// ever written from a `-race` build (`make serve-test`), so the
// numbers stay comparable.
type benchServe struct {
	Submissions  int           `json:"submissions"`
	RaceDetector bool          `json:"race_detector"`
	Workers      int           `json:"workers"`
	Shards       int           `json:"shards"`
	Tenants      int           `json:"tenants"`
	QueueCap     int           `json:"queue_cap"`
	Interp       benchServeRun `json:"interp"`
	Compiled     benchServeRun `json:"compiled"`
}

const (
	smokeSubmissions = 10_000
	smokeSubmitters  = 128 // concurrent submitter goroutines feeding the burst
	smokeWorkers     = 4
	smokeShards      = 4
	smokeTenants     = 32
	smokeQueueCap    = 64  // small on purpose: the burst must hit backpressure
	smokeResultCap   = 512 // below the distinct-key count, so the LRU must evict
	smokeRetention   = 4096
)

// driveLoad pushes smokeSubmissions submissions from smokeTenants
// tenants through a deliberately small queue on the given backend and
// returns throughput and latency percentiles. A fixed pool of
// smokeSubmitters goroutines feeds the burst — enough concurrency to
// keep duplicates in flight together and the queue saturated, without
// drowning the race detector in ten thousand goroutines spinning on
// the retry path. Four in five submissions draw from a small hot set
// of argument vectors — the singleflight registry and the result
// store collapse most of them — while the rest are unique and keep
// real executions flowing through every shard. Throttled submissions
// retry, so every job eventually lands: full completion is asserted,
// which exercises backpressure, sharded DRR dispatch, work stealing,
// batched admission, and both dedup layers together under load.
func driveLoad(t *testing.T, backend machine.Backend) benchServeRun {
	t.Helper()
	s := newTestService(t, Config{
		Workers:        smokeWorkers,
		Shards:         smokeShards,
		QueueCap:       smokeQueueCap,
		ResultCacheCap: smokeResultCap,
		JobRetention:   smokeRetention,
		TripAssume:     64,
		Backend:        backend,
	})

	tenantNames := make([]string, smokeTenants)
	for i := range tenantNames {
		tenantNames[i] = fmt.Sprintf("t%02d", i)
	}
	var (
		mu          sync.Mutex
		submitUS    []float64
		turnMS      []float64
		completed   atomic.Int64
		throttled   atomic.Int64
		failedJobs  atomic.Int64
		otherErrors atomic.Int64
	)

	start := time.Now()
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < smokeSubmitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// Every fifth submission is unique (fresh cache key, must
				// execute); the rest cycle a hot set of 97 argument vectors
				// that singleflight and the result store collapse.
				args := map[string]int64{"a": int64(i%97 + 1), "b": 3}
				if i%5 == 0 {
					args = map[string]int64{"a": 40, "b": int64(1000 + i)}
				}
				req := SubmitRequest{
					Tenant: tenantNames[i%smokeTenants],
					Source: programs.ProdSource,
					Args:   args,
				}
				born := time.Now()
				var j *Job
				for {
					t0 := time.Now()
					var err error
					j, err = s.Submit(req)
					elapsed := time.Since(t0)
					if err == nil {
						mu.Lock()
						submitUS = append(submitUS, float64(elapsed.Microseconds()))
						mu.Unlock()
						break
					}
					if errors.Is(err, ErrQueueFull) {
						throttled.Add(1)
						time.Sleep(time.Millisecond)
						continue
					}
					otherErrors.Add(1)
					j = nil
					break
				}
				if j == nil {
					continue
				}
				select {
				case <-j.Done():
				case <-time.After(120 * time.Second):
					failedJobs.Add(1)
					continue
				}
				v := j.view()
				if v.Status != StatusDone {
					failedJobs.Add(1)
					continue
				}
				completed.Add(1)
				mu.Lock()
				turnMS = append(turnMS, float64(time.Since(born).Microseconds())/1000)
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < smokeSubmissions; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	if n := otherErrors.Load(); n > 0 {
		t.Fatalf("%s: %d submissions failed with unexpected errors", backend, n)
	}
	if n := failedJobs.Load(); n > 0 {
		t.Fatalf("%s: %d jobs did not complete successfully", backend, n)
	}
	if got := completed.Load(); got != smokeSubmissions {
		t.Fatalf("%s: completed %d of %d submissions", backend, got, smokeSubmissions)
	}

	snap := s.Snapshot()
	run := benchServeRun{
		Throttled:      snap.Throttled,
		WallMS:         float64(wall.Microseconds()) / 1000,
		ThroughputJobS: float64(smokeSubmissions) / wall.Seconds(),
		SubmitP50US:    stats.Percentile(submitUS, 50),
		SubmitP99US:    stats.Percentile(submitUS, 99),
		TurnP50MS:      stats.Percentile(turnMS, 50),
		TurnP99MS:      stats.Percentile(turnMS, 99),
		Executions:     snap.Executions,
		Steals:         snap.Steals,
		Singleflight:   snap.SingleflightCollapses,
		ResultHits:     snap.ResultHits,
		Evictions:      snap.ResultEvictions,
		JobsEvicted:    snap.JobsEvicted,
		Compiles:       snap.Compiles,
		CompileHits:    snap.CompileCacheHits,
		CompiledRuns:   snap.CompiledRuns,
	}
	t.Logf("load smoke (%s): %d jobs in %v (%.0f jobs/s; %d executions, %d steals, %d collapses, %d cache hits, %d throttled)",
		backend, smokeSubmissions, wall.Round(time.Millisecond), run.ThroughputJobS,
		run.Executions, run.Steals, run.Singleflight, run.ResultHits, run.Throttled)
	return run
}

// TestLoadSmoke drives the burst on both execution backends and records
// each backend's walls as separate fields in BENCH_serve.json at the
// repo root. The file is only written when the race detector is on
// (`make serve-test`), so numbers stay comparable across commits; plain
// `go test` runs still drive the load but leave the file alone.
func TestLoadSmoke(t *testing.T) {
	interp := driveLoad(t, machine.BackendInterp)
	compiled := driveLoad(t, machine.BackendCompiled)

	// The compiled service must have lowered the one distinct program
	// fingerprint exactly once and run every real execution on it.
	if compiled.Compiles != 1 {
		t.Errorf("compiled smoke: Compiles = %d, want 1", compiled.Compiles)
	}
	if compiled.CompiledRuns == 0 {
		t.Error("compiled smoke: no jobs executed on the compiled backend")
	}

	// BENCH_serve.json exists to be compared across commits, so it is
	// only ever written from the canonical measurement mode: a `-race`
	// build, i.e. `make serve-test`. A plain `go test ./...` run is an
	// order of magnitude faster and would silently replace the baseline
	// with incomparable numbers.
	if !raceDetectorOn {
		t.Log("race detector off: exercising the service only, not rewriting BENCH_serve.json")
		return
	}

	// In the canonical mode the burst must actually exercise the sharded
	// dispatch and dedup machinery, or the recorded numbers never touched
	// the code paths this benchmark exists to watch: a run with no
	// cross-shard steal means the affinity/stealing scan never balanced
	// load, and one with no singleflight collapse means the concurrent
	// duplicates all executed redundantly.
	for _, r := range []struct {
		name string
		run  benchServeRun
	}{{"interp", interp}, {"compiled", compiled}} {
		if r.run.Steals == 0 {
			t.Errorf("%s burst recorded no cross-shard steals: the stealing path was never exercised", r.name)
		}
		if r.run.Singleflight == 0 {
			t.Errorf("%s burst recorded no singleflight collapses: concurrent duplicates all executed", r.name)
		}
	}

	report := benchServe{
		Submissions:  smokeSubmissions,
		RaceDetector: raceDetectorOn,
		Workers:      smokeWorkers,
		Shards:       smokeShards,
		Tenants:      smokeTenants,
		QueueCap:     smokeQueueCap,
		Interp:       interp,
		Compiled:     compiled,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile("../../BENCH_serve.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatalf("write BENCH_serve.json: %v", err)
	}
}
