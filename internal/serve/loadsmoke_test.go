package serve

import (
	"encoding/json"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tpal/internal/stats"
	"tpal/internal/tpal/programs"
)

// benchServe is the schema of BENCH_serve.json: a smoke-level load
// result for the service, comparable across commits. RaceDetector
// records the measurement mode: the file is only ever written from a
// `-race` build (`make serve-test`), so the numbers stay comparable.
type benchServe struct {
	Submissions    int     `json:"submissions"`
	Completed      int64   `json:"completed"`
	Throttled      int64   `json:"throttled"`
	RaceDetector   bool    `json:"race_detector"`
	Workers        int     `json:"workers"`
	QueueCap       int     `json:"queue_cap"`
	WallMS         float64 `json:"wall_ms"`
	ThroughputJobS float64 `json:"throughput_jobs_per_sec"`
	SubmitP50US    float64 `json:"submit_p50_us"`
	SubmitP99US    float64 `json:"submit_p99_us"`
	TurnP50MS      float64 `json:"turnaround_p50_ms"`
	TurnP99MS      float64 `json:"turnaround_p99_ms"`
	ResultHits     int64   `json:"result_cache_hits"`
}

// TestLoadSmoke pushes >=200 concurrent submissions from many tenants
// through a deliberately small queue and records throughput and
// latency percentiles in BENCH_serve.json at the repo root. Throttled
// submissions retry, so every job eventually lands: the test asserts
// full completion, which exercises backpressure, DRR fairness, and the
// result cache together under load. BENCH_serve.json is only written
// when the race detector is on (`make serve-test`), so numbers stay
// comparable across commits; plain `go test` runs still drive the load
// but leave the file alone.
func TestLoadSmoke(t *testing.T) {
	const (
		submissions = 240
		tenants     = 8
	)
	s := newTestService(t, Config{
		Workers:    4,
		QueueCap:   16, // small on purpose: the burst must hit backpressure
		TripAssume: 64,
	})

	tenantNames := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	var (
		mu          sync.Mutex
		submitUS    []float64
		turnMS      []float64
		completed   atomic.Int64
		throttled   atomic.Int64
		failedJobs  atomic.Int64
		otherErrors atomic.Int64
	)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < submissions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A spread of argument values keeps most submissions distinct
			// while leaving enough repeats for the result cache to matter.
			req := SubmitRequest{
				Tenant: tenantNames[i%tenants],
				Source: programs.ProdSource,
				Args:   map[string]int64{"a": int64(i%40 + 1), "b": 3},
			}
			born := time.Now()
			var j *Job
			for {
				t0 := time.Now()
				var err error
				j, err = s.Submit(req)
				elapsed := time.Since(t0)
				if err == nil {
					mu.Lock()
					submitUS = append(submitUS, float64(elapsed.Microseconds()))
					mu.Unlock()
					break
				}
				if errors.Is(err, ErrQueueFull) {
					throttled.Add(1)
					time.Sleep(time.Millisecond)
					continue
				}
				otherErrors.Add(1)
				return
			}
			select {
			case <-j.Done():
			case <-time.After(60 * time.Second):
				failedJobs.Add(1)
				return
			}
			v := j.view()
			if v.Status != StatusDone {
				failedJobs.Add(1)
				return
			}
			completed.Add(1)
			mu.Lock()
			turnMS = append(turnMS, float64(time.Since(born).Microseconds())/1000)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	if n := otherErrors.Load(); n > 0 {
		t.Fatalf("%d submissions failed with unexpected errors", n)
	}
	if n := failedJobs.Load(); n > 0 {
		t.Fatalf("%d jobs did not complete successfully", n)
	}
	if got := completed.Load(); got != submissions {
		t.Fatalf("completed %d of %d submissions", got, submissions)
	}

	snap := s.Snapshot()
	report := benchServe{
		Submissions:    submissions,
		Completed:      completed.Load(),
		Throttled:      snap.Throttled,
		RaceDetector:   raceDetectorOn,
		Workers:        4,
		QueueCap:       16,
		WallMS:         float64(wall.Microseconds()) / 1000,
		ThroughputJobS: float64(submissions) / wall.Seconds(),
		SubmitP50US:    stats.Percentile(submitUS, 50),
		SubmitP99US:    stats.Percentile(submitUS, 99),
		TurnP50MS:      stats.Percentile(turnMS, 50),
		TurnP99MS:      stats.Percentile(turnMS, 99),
		ResultHits:     snap.ResultHits,
	}
	t.Logf("load smoke: %d jobs in %v (%.0f jobs/s, %d throttled, %d cache hits)",
		submissions, wall.Round(time.Millisecond), report.ThroughputJobS, snap.Throttled, snap.ResultHits)

	// BENCH_serve.json exists to be compared across commits, so it is
	// only ever written from the canonical measurement mode: a `-race`
	// build, i.e. `make serve-test`. A plain `go test ./...` run is an
	// order of magnitude faster and would silently replace the baseline
	// with incomparable numbers.
	if !raceDetectorOn {
		t.Log("race detector off: exercising the service only, not rewriting BENCH_serve.json")
		return
	}

	// In the canonical mode the burst must actually hit the queue cap,
	// or the recorded run never exercised backpressure or DRR fairness
	// and its numbers are meaningless as a load benchmark.
	if snap.Throttled == 0 {
		t.Fatalf("burst never hit the queue cap: shrink QueueCap or grow the burst so the benchmark exercises backpressure")
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile("../../BENCH_serve.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatalf("write BENCH_serve.json: %v", err)
	}
}
