package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"tpal/internal/tpal/programs"
)

// sumsqSrc is a minipar source: the front end is selected by
// auto-detection (no "program" header) and the declared params become
// the entry registers.
const sumsqSrc = `
params n
var total = 0
parfor i in 0 .. n reduce(total, +) {
    var sq = i * i
    total = total + sq
}
return total
`

type httpClient struct {
	t    *testing.T
	base string
}

func (c *httpClient) post(path string, body any) (int, []byte) {
	c.t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		c.t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		c.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes()
}

func (c *httpClient) get(path string) (int, []byte) {
	c.t.Helper()
	resp, err := http.Get(c.base + path)
	if err != nil {
		c.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp.StatusCode, out.Bytes()
}

// pollJob polls GET /v1/jobs/{id} until the job reaches a terminal
// state.
func (c *httpClient) pollJob(id string) JobView {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := c.get("/v1/jobs/" + id)
		if code != http.StatusOK {
			c.t.Fatalf("GET job %s: status %d: %s", id, code, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			c.t.Fatalf("decode job %s: %v", id, err)
		}
		if v.Status.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("job %s never reached a terminal state", id)
	return JobView{}
}

// TestEndToEndMixedBatch is the acceptance scenario from the issue: a
// concurrent mixed batch over the real HTTP surface — valid TPAL and
// minipar programs, a TP060-racy program, a TP050-unbounded program,
// and a budget-blowing hog — followed by queue-full backpressure and a
// clean drain, all under the race detector with no leaked goroutines.
func TestEndToEndMixedBatch(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{
		Workers:    2,
		QueueCap:   64,
		TripAssume: 64,
		MinBudget:  50_000,
		FuelCap:    2_000_000,
	})
	srv := httptest.NewServer(s.Handler())
	// Cleanup order: drain the service first, then close the HTTP
	// server, then check for leaks (httptest keeps idle conns briefly).

	c := &httpClient{t: t, base: srv.URL}

	if code, _ := c.get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d, want 200", code)
	}

	type submission struct {
		name     string
		req      SubmitRequest
		wantCode int
		// For 202 submissions: expected terminal status and result.
		wantStatus Status
		wantReg    string
		wantVal    string
		// For 422 rejections: a TP code that must appear in diags.
		wantDiag string
	}
	subs := []submission{
		{
			name:       "prod",
			req:        SubmitRequest{Tenant: "alice", Source: programs.ProdSource, Args: map[string]int64{"a": 12, "b": 5}},
			wantCode:   http.StatusAccepted,
			wantStatus: StatusDone, wantReg: "c", wantVal: "60",
		},
		{
			name:       "pow",
			req:        SubmitRequest{Tenant: "bob", Source: programs.PowSource, Args: map[string]int64{"d": 3, "e": 4}, Heartbeat: 10},
			wantCode:   http.StatusAccepted,
			wantStatus: StatusDone, wantReg: "f", wantVal: "81",
		},
		{
			name:       "fib",
			req:        SubmitRequest{Tenant: "alice", Source: programs.FibSource, Args: map[string]int64{"n": 12}, Heartbeat: 4},
			wantCode:   http.StatusAccepted,
			wantStatus: StatusDone, wantReg: "f", wantVal: "144",
		},
		{
			name:       "minipar-sumsq",
			req:        SubmitRequest{Tenant: "carol", Lang: "minipar", Source: sumsqSrc, Args: map[string]int64{"n": 50}, Heartbeat: 16},
			wantCode:   http.StatusAccepted,
			wantStatus: StatusDone, wantReg: "result", wantVal: "40425",
		},
		{
			name:     "racy",
			req:      SubmitRequest{Tenant: "mallory", Source: racySrc},
			wantCode: http.StatusUnprocessableEntity,
			wantDiag: "TP060",
		},
		{
			name:     "unbounded",
			req:      SubmitRequest{Tenant: "mallory", Source: unboundedSrc},
			wantCode: http.StatusUnprocessableEntity,
			wantDiag: "TP050",
		},
		{
			// The hog passes admission (its symbolic work is a function
			// of the unknown trip count) but blows through the quoted
			// step budget at run time.
			name:       "hog",
			req:        SubmitRequest{Tenant: "mallory", Source: programs.ProdSource, Args: map[string]int64{"a": 100_000_000, "b": 1}},
			wantCode:   http.StatusAccepted,
			wantStatus: StatusBudget,
		},
	}

	var wg sync.WaitGroup
	results := make([]JobView, len(subs))
	codes := make([]int, len(subs))
	bodies := make([][]byte, len(subs))
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub submission) {
			defer wg.Done()
			code, body := c.post("/v1/jobs", sub.req)
			codes[i], bodies[i] = code, body
			if code != http.StatusAccepted {
				return
			}
			var v JobView
			if err := json.Unmarshal(body, &v); err != nil {
				t.Errorf("%s: decode submit response: %v", sub.name, err)
				return
			}
			results[i] = c.pollJob(v.ID)
		}(i, sub)
	}
	wg.Wait()

	for i, sub := range subs {
		if codes[i] != sub.wantCode {
			t.Errorf("%s: HTTP %d, want %d: %s", sub.name, codes[i], sub.wantCode, bodies[i])
			continue
		}
		switch sub.wantCode {
		case http.StatusAccepted:
			v := results[i]
			if v.Status != sub.wantStatus {
				t.Errorf("%s: status %s (%s), want %s", sub.name, v.Status, v.Error, sub.wantStatus)
			}
			if sub.wantReg != "" && v.Result[sub.wantReg] != sub.wantVal {
				t.Errorf("%s: result %s = %q, want %q", sub.name, sub.wantReg, v.Result[sub.wantReg], sub.wantVal)
			}
		case http.StatusUnprocessableEntity:
			var v JobView
			if err := json.Unmarshal(bodies[i], &v); err != nil {
				t.Errorf("%s: decode rejection: %v", sub.name, err)
				continue
			}
			if v.Status != StatusRejected {
				t.Errorf("%s: status %s, want rejected", sub.name, v.Status)
			}
			found := false
			for _, d := range v.Diags {
				if d.Code == sub.wantDiag {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: rejection diags %v carry no %s", sub.name, v.Diags, sub.wantDiag)
			}
		}
	}

	// Malformed source is a 400, not a 422: it never reached admission.
	if code, body := c.post("/v1/jobs", SubmitRequest{Source: "program broken entry nowhere"}); code != http.StatusBadRequest {
		t.Errorf("malformed source: HTTP %d, want 400: %s", code, body)
	}

	// Unknown job id is a 404.
	if code, _ := c.get("/v1/jobs/j999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}

	// /v1/analyze renders the full report without executing.
	code, body := c.post("/v1/analyze", AnalyzeRequest{Source: racySrc})
	if code != http.StatusOK {
		t.Fatalf("analyze: HTTP %d: %s", code, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decode analyze: %v", err)
	}
	if ar.Admissible {
		t.Error("analyze: racy program reported admissible")
	}
	if len(ar.Diags) == 0 {
		t.Error("analyze: racy program carries no diags")
	}

	// Backpressure: with the single worker wedged and the queue shrunk
	// to two slots, a burst of submissions must hit a 429 with
	// Retry-After. We use a dedicated service so the wedge cannot
	// interfere with the batch above.
	s2 := New(Config{Workers: 1, QueueCap: 2})
	release := make(chan struct{})
	s2.setRunningHook(func(*Job) { <-release })
	srv2 := httptest.NewServer(s2.Handler())
	c2 := &httpClient{t: t, base: srv2.URL}
	saw429 := false
	for i := 0; i < 6; i++ {
		code, _ := c2.post("/v1/jobs", SubmitRequest{
			Tenant: fmt.Sprintf("t%d", i),
			Source: programs.ProdSource,
			Args:   map[string]int64{"a": int64(i + 1), "b": 2},
		})
		if code == http.StatusTooManyRequests {
			saw429 = true
		}
	}
	if !saw429 {
		t.Error("burst through a 2-slot queue never produced a 429")
	}
	close(release)

	// Metrics surface the story.
	code, body = c.get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if snap.Rejected < 2 {
		t.Errorf("metrics: rejected = %d, want >= 2", snap.Rejected)
	}
	if snap.Completed < 4 {
		t.Errorf("metrics: completed = %d, want >= 4", snap.Completed)
	}
	if snap.BudgetExceeded < 1 {
		t.Errorf("metrics: budget_exceeded = %d, want >= 1", snap.BudgetExceeded)
	}

	// Clean drain: healthz flips to 503, submissions bounce with 503,
	// and everything shuts down without leaking goroutines.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _ := c.get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: %d, want 503", code)
	}
	if code, _ := c.post("/v1/jobs", SubmitRequest{Source: programs.ProdSource, Args: map[string]int64{"a": 1, "b": 1}}); code != http.StatusServiceUnavailable {
		t.Errorf("submit after drain: %d, want 503", code)
	}
	if err := s2.Drain(ctx); err != nil {
		t.Fatalf("drain s2: %v", err)
	}
	srv.Close()
	srv2.Close()
	waitGoroutines(t, before)
}
