package serve

import (
	"fmt"
	"sort"
	"strings"

	"tpal/internal/minipar"
	"tpal/internal/minipar/autopar"
	"tpal/internal/tpal"
	"tpal/internal/tpal/analysis"
	"tpal/internal/tpal/asm"
	"tpal/internal/tpal/machine/compile"
	"tpal/internal/tpal/opt"
)

// loadSource parses a submission into a TPAL program. Lang selects the
// front end: "tpal" (assembly), "minipar" (compiled to TPAL), or ""
// (auto-detected — TPAL assembly always opens with the program
// keyword). For minipar, the declared params join the entry register
// set. Errors are submission errors (HTTP 400), never faults.
func loadSource(lang, source string) (*tpal.Program, []tpal.Reg, error) {
	if lang == "" {
		lang = detectLang(source)
	}
	switch lang {
	case "tpal":
		p, err := asm.Parse(source)
		if err != nil {
			return nil, nil, fmt.Errorf("parse tpal: %w", err)
		}
		return p, nil, nil
	case "minipar":
		mp, err := minipar.Parse(source)
		if err != nil {
			return nil, nil, fmt.Errorf("parse minipar: %w", err)
		}
		p, err := minipar.Compile(mp)
		if err != nil {
			return nil, nil, fmt.Errorf("compile minipar: %w", err)
		}
		params := make([]tpal.Reg, len(mp.Params))
		for i, name := range mp.Params {
			params[i] = tpal.Reg(name)
		}
		return p, params, nil
	default:
		return nil, nil, fmt.Errorf("unknown lang %q (want tpal or minipar)", lang)
	}
}

// loadSubmission resolves one submission into the program that will
// face the admission gate. Without auto_parallelize it is loadSource;
// with it, the autopar dependence pass transforms the (minipar-only)
// source first and the transformed, certified program is what gets
// admitted, along with the per-site verdict report for the job record.
// Errors are submission errors (HTTP 400), including a transform that
// cannot even start because the input is not certification-clean.
func (s *Service) loadSubmission(req SubmitRequest) (*tpal.Program, []tpal.Reg, *AutoparReport, error) {
	if !req.AutoParallelize {
		prog, params, err := loadSource(req.Lang, req.Source)
		return prog, params, nil, err
	}
	lang := req.Lang
	if lang == "" {
		lang = detectLang(req.Source)
	}
	if lang != "minipar" {
		return nil, nil, nil, fmt.Errorf("auto_parallelize requires a minipar source (got lang %q)", lang)
	}
	res, err := autopar.TransformSource(req.Source, autopar.Options{TripAssume: s.cfg.TripAssume})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("auto_parallelize: %w", err)
	}
	params := make([]tpal.Reg, len(res.Program.Params))
	for i, name := range res.Program.Params {
		params[i] = tpal.Reg(name)
	}
	return res.Compiled, params, autoparReportOf(res), nil
}

// detectLang guesses the front end from the first non-comment line:
// TPAL assembly always opens with the program keyword, minipar never
// does (its comments start with #, TPAL's with //).
func detectLang(source string) string {
	for _, line := range strings.Split(source, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "program ") {
			return "tpal"
		}
		return "minipar"
	}
	return "tpal"
}

// admission is the cached outcome of running the full analysis
// pipeline over one (program, entry-register-set) pair.
type admission struct {
	fingerprint string
	diags       []Diag
	rejected    bool
	reason      string // one-line rejection summary
	quote       Quote
	latency     string
	// optimized is the certified-optimized program the executor should
	// run in place of the submitted one; nil when the optimizer is
	// disabled, the program was rejected, or no rewrite was accepted.
	// The quote is derived from the optimized bounds, so the fuel grant
	// re-prices the program the pool actually executes.
	optimized *tpal.Program
}

// admitKey keys the analysis cache: the program fingerprint plus the
// entry-register set, which sharpens the definite-initialization facts
// the verifier proves and therefore changes the diagnostics.
func admitKey(fp string, entry []tpal.Reg) string {
	names := make([]string, len(entry))
	for i, r := range entry {
		names[i] = string(r)
	}
	sort.Strings(names)
	return fp + "|" + strings.Join(names, ",")
}

// admit runs the admission gate: the full static pipeline (verify,
// liveness, work/span, races) with the interference pass on. A program
// is condemned when the pipeline proves a definite fault or definite
// interference (any Error-severity diagnostic, which includes
// TP060–TP062), or when its promotion latency is unbounded (TP050): a
// task that can starve the shared heartbeat scheduler forever has no
// place on a multi-tenant pool. Everything else is admitted with a cost
// quote derived from the symbolic work bound.
func (s *Service) admit(p *tpal.Program, entry []tpal.Reg) *admission {
	fp := tpal.Fingerprint(p)
	key := admitKey(fp, entry)

	s.mu.Lock()
	if a, ok := s.analysisCache[key]; ok {
		s.metrics.AnalysisHits++
		s.mu.Unlock()
		return a
	}
	s.mu.Unlock()

	a := s.analyze(p, entry, fp)

	s.mu.Lock()
	if prev, ok := s.analysisCache[key]; ok { // lost a concurrent-analysis race
		s.metrics.AnalysisHits++
		s.mu.Unlock()
		return prev
	}
	s.analysisCache[key] = a
	s.metrics.Analyses++
	s.mu.Unlock()
	return a
}

// analyze runs the analysis pipeline over one (program, entry) pair
// and builds its admission verdict. It takes no locks and touches no
// caches — admit and the batched submission path both call it, each
// managing the analysis cache under the service mutex themselves. The
// only service state it reads is immutable configuration.
func (s *Service) analyze(p *tpal.Program, entry []tpal.Reg, fp string) *admission {
	report := analysis.Analyze(p, analysis.Options{EntryRegs: entry, Races: true})
	a := &admission{
		fingerprint: fp,
		diags:       wireDiags(report.Diags),
		latency:     report.Latency.String(),
	}
	switch {
	case analysis.HasErrors(report.Diags):
		a.rejected = true
		a.reason = "static analysis proved a definite fault or race"
	case report.Latency.Class == analysis.LatencyUnbounded:
		a.rejected = true
		a.reason = "promotion latency is unbounded (TP050): the job could starve the shared worker pool"
	default:
		a.quote = s.quote(report)
		if !s.cfg.DisableOptimizer {
			if res, err := opt.Optimize(p, opt.Options{EntryRegs: entry}); err == nil && res.Rewrites() > 0 {
				a.optimized = res.Program
				a.quote = s.quoteBounds(res.After.Work, res.After.Span, res.After.Trips)
				a.quote.OptRewrites = res.Rewrites()
				a.latency = res.After.Latency.String()
			}
		}
	}
	return a
}

// compiledFor returns the closure-threaded form of the program the
// pool will execute, memoized beside the analysis cache under the same
// admission key. On a miss it re-analyzes the program being lowered —
// which may be the optimizer's rewrite, whose diagnostics differ from
// the submitted form's admission report — so the lowering hoists
// exactly the metafunction checks provable for the code that runs.
// A lowering failure falls back to the interpreter (nil).
func (s *Service) compiledFor(key string, p *tpal.Program, entry []tpal.Reg) *compile.Program {
	s.mu.Lock()
	if cp, ok := s.compiledCache[key]; ok {
		s.metrics.CompileCacheHits++
		s.mu.Unlock()
		return cp
	}
	s.mu.Unlock()

	report := analysis.Analyze(p, analysis.Options{EntryRegs: entry})
	opts := compile.Options{}
	if !analysis.HasErrors(report.Diags) {
		opts.Report = report
	}
	cp, err := compile.Compile(p, opts)
	if err != nil {
		return nil
	}

	s.mu.Lock()
	if prev, ok := s.compiledCache[key]; ok { // lost a concurrent-compile race
		s.metrics.CompileCacheHits++
		s.mu.Unlock()
		return prev
	}
	s.compiledCache[key] = cp
	s.metrics.Compiles++
	s.metrics.ChecksHoisted += int64(cp.Hoisted())
	s.mu.Unlock()
	return cp
}

// quote converts the symbolic work/span estimate into a step budget:
// every trip count the interval analysis bounded is priced at its
// proved upper bound ("inferred"), every remaining one at TripAssume
// ("assumed"); the evaluated estimate is scaled by QuoteMargin to
// absorb estimator slack and clamped into [MinBudget, FuelCap]. Heavy
// jobs can still outrun the quote — that is what the budget_exceeded
// state is for — but the clamp guarantees no single job holds an
// executor longer than FuelCap steps.
func (s *Service) quote(r *analysis.Report) Quote {
	return s.quoteBounds(r.Work, r.Span, r.Trips)
}

// quoteBounds prices a (work, span) bound pair under the inferred trip
// bounds; admit uses it both for the submitted program's report and to
// re-quote from the optimizer's post-pipeline bounds.
func (s *Service) quoteBounds(work, span *analysis.Expr, inferred map[tpal.Label]analysis.TripBound) Quote {
	trips := make(map[tpal.Label]int64)
	prov := make(map[string]TripQuote)
	for _, l := range work.Trips() {
		if tb, ok := inferred[l]; ok && tb.Bounded() {
			trips[l] = tb.Hi
			prov[string(l)] = TripQuote{Count: tb.Hi, Source: "inferred"}
		} else {
			trips[l] = s.cfg.TripAssume
			prov[string(l)] = TripQuote{Count: s.cfg.TripAssume, Source: "assumed"}
		}
	}
	est := work.Eval(trips, 1)
	budget := est
	if budget > s.cfg.FuelCap/s.cfg.QuoteMargin {
		budget = s.cfg.FuelCap
	} else {
		budget *= s.cfg.QuoteMargin
	}
	if budget < s.cfg.MinBudget {
		budget = s.cfg.MinBudget
	}
	if budget > s.cfg.FuelCap {
		budget = s.cfg.FuelCap
	}
	return Quote{
		Work:     work.String(),
		Span:     span.String(),
		EstSteps: est,
		Budget:   budget,
		Trips:    prov,
	}
}

func wireDiags(ds []analysis.Diag) []Diag {
	out := make([]Diag, len(ds))
	for i, d := range ds {
		out[i] = Diag{
			Severity: d.Severity.String(),
			Code:     string(d.Code),
			Block:    string(d.Block),
			Instr:    d.Instr,
			Msg:      d.Msg,
		}
	}
	return out
}

// resultKey keys the result cache: program identity plus everything
// that determines the outcome — the argument values and the scheduling
// parameters (the lockstep executor is deterministic given those).
func resultKey(fp string, args map[string]int64, heartbeat, signal int64) string {
	names := make([]string, 0, len(args))
	for k := range args {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(fp)
	for _, k := range names {
		fmt.Fprintf(&sb, "|%s=%d", k, args[k])
	}
	fmt.Fprintf(&sb, "|hb=%d|sig=%d", heartbeat, signal)
	return sb.String()
}
