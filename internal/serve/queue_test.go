package serve

import (
	"fmt"
	"testing"
)

// TestDRRTenantChurnNoLeak pins the tenant-state leak fix: a queue
// that has seen 10k distinct tenant keys come and go must retain no
// per-tenant state once their jobs are dispatched. (The original
// implementation kept one tenantQueue per key ever pushed, so a
// service facing churning tenant populations leaked without bound.)
func TestDRRTenantChurnNoLeak(t *testing.T) {
	q := newDRRQueue(100)
	const tenants = 10_000
	for i := 0; i < tenants; i++ {
		q.push(&Job{Tenant: fmt.Sprintf("t%05d", i), cost: 1})
	}
	if got := len(q.tenants); got != tenants {
		t.Fatalf("backlogged tenants = %d, want %d", got, tenants)
	}
	for i := 0; i < tenants; i++ {
		if q.pop() == nil {
			t.Fatalf("pop %d returned nil with %d still queued", i, q.len())
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after popping everything: %d left", q.len())
	}
	if got := len(q.tenants); got != 0 {
		t.Errorf("tenant map retains %d entries after churn, want 0", got)
	}
	if got := len(q.ring); got != 0 {
		t.Errorf("ring retains %d entries after churn, want 0", got)
	}
}

// TestDRRBigCostFewVisits pins the credit-shortfall fix: dispatching a
// job whose cost is astronomically larger than the quantum must take
// O(ring) tenant visits, not O(cost/quantum) ring passes. With cost
// 20M and quantum 1 the original loop spun 20 million passes.
func TestDRRBigCostFewVisits(t *testing.T) {
	q := newDRRQueue(1)
	q.push(&Job{Tenant: "whale", cost: 20_000_000})
	j := q.pop()
	if j == nil || j.Tenant != "whale" {
		t.Fatalf("pop = %+v, want the whale job", j)
	}
	if q.visits > 8 {
		t.Errorf("dispatch took %d tenant visits, want O(ring) not O(cost/quantum)", q.visits)
	}
}

// TestDRRShortfallPreservesOrder checks that bulk-crediting a full
// uncredited pass lands on exactly the tenant the one-quantum-per-pass
// scan would have reached: the smaller head job goes first even when
// pushed second.
func TestDRRShortfallPreservesOrder(t *testing.T) {
	q := newDRRQueue(1)
	q.push(&Job{Tenant: "big", cost: 20_000_000})
	q.push(&Job{Tenant: "small", cost: 10_000_000})
	if j := q.pop(); j.Tenant != "small" {
		t.Fatalf("first dispatch = %s, want small (cheapest shortfall)", j.Tenant)
	}
	if j := q.pop(); j.Tenant != "big" {
		t.Fatalf("second dispatch = %s, want big", j.Tenant)
	}
	if q.visits > 16 {
		t.Errorf("two dispatches took %d visits, want O(ring) each", q.visits)
	}
}
