package serve

import (
	"tpal/internal/stats"
)

// metricSamples keeps a bounded ring of recent latency samples (in
// milliseconds) for percentile reporting.
type metricSamples struct {
	buf  []float64
	next int
	full bool
}

func newSamples(capacity int) *metricSamples {
	return &metricSamples{buf: make([]float64, capacity)}
}

func (m *metricSamples) add(v float64) {
	m.buf[m.next] = v
	m.next++
	if m.next == len(m.buf) {
		m.next = 0
		m.full = true
	}
}

func (m *metricSamples) values() []float64 {
	if m.full {
		return append([]float64(nil), m.buf...)
	}
	return append([]float64(nil), m.buf[:m.next]...)
}

// Metrics is the service's counter set. All fields are guarded by the
// Service mutex; Snapshot copies them out.
type Metrics struct {
	Submitted      int64
	Admitted       int64
	Rejected       int64
	Completed      int64
	Failed         int64
	BudgetExceeded int64
	Timeouts       int64
	Canceled       int64
	Throttled      int64 // 429s: submissions bounced off the full queue
	AnalysisHits   int64
	ResultHits     int64

	queueWait *metricSamples // submission → first execution step
	exec      *metricSamples // execution duration
}

func newMetrics() *Metrics {
	return &Metrics{
		queueWait: newSamples(4096),
		exec:      newSamples(4096),
	}
}

// MetricsSnapshot is the wire form of GET /metrics.
type MetricsSnapshot struct {
	Submitted      int64 `json:"submitted"`
	Admitted       int64 `json:"admitted"`
	Rejected       int64 `json:"rejected"`
	Completed      int64 `json:"completed"`
	Failed         int64 `json:"failed"`
	BudgetExceeded int64 `json:"budget_exceeded"`
	Timeouts       int64 `json:"timeouts"`
	Canceled       int64 `json:"canceled"`
	Throttled      int64 `json:"throttled_429"`
	AnalysisHits   int64 `json:"analysis_cache_hits"`
	ResultHits     int64 `json:"result_cache_hits"`

	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	Workers    int `json:"workers"`
	Draining   bool `json:"draining"`

	QueueWaitP50MS float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
	ExecP50MS      float64 `json:"exec_p50_ms"`
	ExecP99MS      float64 `json:"exec_p99_ms"`
}

// Snapshot returns a consistent copy of the metrics. Callers must not
// hold the service mutex; the service takes it.
func (s *Service) Snapshot() MetricsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.metrics
	wait := m.queueWait.values()
	exec := m.exec.values()
	return MetricsSnapshot{
		Submitted:      m.Submitted,
		Admitted:       m.Admitted,
		Rejected:       m.Rejected,
		Completed:      m.Completed,
		Failed:         m.Failed,
		BudgetExceeded: m.BudgetExceeded,
		Timeouts:       m.Timeouts,
		Canceled:       m.Canceled,
		Throttled:      m.Throttled,
		AnalysisHits:   m.AnalysisHits,
		ResultHits:     m.ResultHits,
		QueueDepth:     s.queue.len(),
		InFlight:       len(s.inflight),
		Workers:        s.cfg.Workers,
		Draining:       s.draining,
		QueueWaitP50MS: stats.Percentile(wait, 50),
		QueueWaitP99MS: stats.Percentile(wait, 99),
		ExecP50MS:      stats.Percentile(exec, 50),
		ExecP99MS:      stats.Percentile(exec, 99),
	}
}
