package serve

import (
	"time"

	"tpal/internal/stats"
)

// metricSamples keeps a bounded ring of recent latency samples (in
// milliseconds) for percentile reporting.
type metricSamples struct {
	buf  []float64
	next int
	full bool
}

func newSamples(capacity int) *metricSamples {
	return &metricSamples{buf: make([]float64, capacity)}
}

func (m *metricSamples) add(v float64) {
	m.buf[m.next] = v
	m.next++
	if m.next == len(m.buf) {
		m.next = 0
		m.full = true
	}
}

func (m *metricSamples) values() []float64 {
	if m.full {
		return append([]float64(nil), m.buf...)
	}
	return append([]float64(nil), m.buf[:m.next]...)
}

// Metrics is the service's counter set. All fields are guarded by the
// Service mutex; Snapshot copies them out.
type Metrics struct {
	Submitted      int64
	Admitted       int64
	Rejected       int64
	Completed      int64
	Failed         int64
	BudgetExceeded int64
	Timeouts       int64
	Canceled       int64
	Throttled      int64 // 429s: submissions bounced off the full queue
	AnalysisHits   int64
	ResultHits     int64
	TracedJobs     int64 // executions run with a per-job tracer

	// Sharded-dispatch counters: executions started, jobs a worker stole
	// from another shard's queue, admission batches processed, analysis
	// pipeline runs (unique fingerprints actually analyzed), identical
	// in-flight submissions collapsed by singleflight, and eviction
	// counts for the two bounded stores (results LRU, job retention).
	Executions            int64
	Steals                int64
	Batches               int64
	Analyses              int64
	SingleflightCollapses int64
	JobsEvicted           int64

	// Compiled-backend counters: programs lowered to closure-threaded
	// form, submissions that reused a cached lowering, executions that
	// ran on the compiled backend, and metafunction checks the verifier
	// let the lowering discharge statically (summed over compiles).
	Compiles         int64
	CompileCacheHits int64
	CompiledRuns     int64
	ChecksHoisted    int64

	// ExecNanos accumulates executor-busy wall time across finished
	// runs; Promotions accumulates heartbeat handler entries across
	// successful runs. Together they derive the busy-fraction and
	// promotion-rate gauges of /metrics.
	ExecNanos  int64
	Promotions int64

	// Autopar admission counters: jobs admitted with auto_parallelize,
	// candidate-site outcomes summed across them, and a histogram of
	// the program-level predicted speedups.
	AutoparAdmissions        int64
	AutoparSitesParallelized int64
	AutoparSitesBlocked      int64

	queueWait      *metricSamples   // submission → first execution step
	exec           *metricSamples   // execution duration
	traceCounts    map[string]int64 // per-kind event totals over traced jobs
	autoparSpeedup map[string]int64 // predicted-speedup histogram buckets
}

func newMetrics() *Metrics {
	return &Metrics{
		queueWait:      newSamples(4096),
		exec:           newSamples(4096),
		traceCounts:    make(map[string]int64),
		autoparSpeedup: make(map[string]int64),
	}
}

// noteAutopar records one auto-parallelized admission. A nil report
// (the submission did not ask for the pass) is a no-op, so the call
// sits unconditionally on both admission paths. Callers hold the
// service mutex.
func (m *Metrics) noteAutopar(rep *AutoparReport) {
	if rep == nil {
		return
	}
	m.AutoparAdmissions++
	m.AutoparSitesParallelized += int64(rep.Parallelized)
	m.AutoparSitesBlocked += int64(rep.Blocked)
	m.autoparSpeedup[speedupBucket(rep.PredictedSpeedup)]++
}

// speedupBucket maps a predicted speedup onto the fixed histogram
// buckets of /metrics. The boundaries are powers of two above 2x —
// the interesting resolution is at the low end, where forking barely
// pays for itself.
func speedupBucket(s float64) string {
	switch {
	case s < 1.5:
		return "<1.5"
	case s < 2:
		return "1.5-2"
	case s < 4:
		return "2-4"
	case s < 8:
		return "4-8"
	case s < 16:
		return "8-16"
	default:
		return ">=16"
	}
}

// MetricsSnapshot is the wire form of GET /metrics.
type MetricsSnapshot struct {
	Submitted      int64 `json:"submitted"`
	Admitted       int64 `json:"admitted"`
	Rejected       int64 `json:"rejected"`
	Completed      int64 `json:"completed"`
	Failed         int64 `json:"failed"`
	BudgetExceeded int64 `json:"budget_exceeded"`
	Timeouts       int64 `json:"timeouts"`
	Canceled       int64 `json:"canceled"`
	Throttled      int64 `json:"throttled_429"`
	AnalysisHits   int64 `json:"analysis_cache_hits"`
	ResultHits     int64 `json:"result_cache_hits"`

	// Compiled-backend gauges (all zero when the service runs the
	// interpreter backend).
	Compiles         int64 `json:"compiles"`
	CompileCacheHits int64 `json:"compile_cache_hits"`
	CompiledRuns     int64 `json:"compiled_runs"`
	ChecksHoisted    int64 `json:"checks_hoisted"`

	QueueDepth int  `json:"queue_depth"`
	InFlight   int  `json:"in_flight"`
	Workers    int  `json:"workers"`
	Shards     int  `json:"shards"`
	Draining   bool `json:"draining"`

	// Sharded-dispatch gauges: executions started, cross-shard steals,
	// admission batches, unique analyses, concurrent duplicates collapsed
	// by singleflight, and eviction/retention state of the two bounded
	// stores.
	Executions            int64 `json:"executions"`
	Steals                int64 `json:"steals"`
	Batches               int64 `json:"admission_batches"`
	Analyses              int64 `json:"analyses"`
	SingleflightCollapses int64 `json:"singleflight_collapses"`
	ResultEvictions       int64 `json:"result_evictions"`
	JobsEvicted           int64 `json:"jobs_evicted"`
	JobsRetained          int   `json:"jobs_retained"`

	// TenantDeficits exposes the DRR fairness state: the current credit
	// of every backlogged tenant (absent tenants are idle and hold no
	// credit by construction).
	TenantDeficits map[string]int64 `json:"tenant_deficits,omitempty"`
	// BusyFraction is accumulated execution time over uptime × workers:
	// how much of the executor pool's capacity has gone to running jobs.
	BusyFraction float64 `json:"executor_busy_fraction"`
	// PromotionRate is heartbeat promotions per executor-busy second
	// across completed runs — the service-level promotion intensity.
	PromotionRate float64 `json:"promotion_rate_per_sec"`
	TracedJobs    int64   `json:"traced_jobs"`
	// TraceEventCounts totals drained per-kind event counts over all
	// traced jobs.
	TraceEventCounts map[string]int64 `json:"trace_event_counts,omitempty"`

	// Autopar gauges: admissions that ran the auto-parallelizing pass,
	// candidate-site outcomes across them, and the histogram of
	// program-level predicted speedups (bucket label → count).
	AutoparAdmissions        int64            `json:"autopar_admissions"`
	AutoparSitesParallelized int64            `json:"autopar_sites_parallelized"`
	AutoparSitesBlocked      int64            `json:"autopar_sites_blocked"`
	AutoparSpeedupHist       map[string]int64 `json:"autopar_speedup_hist,omitempty"`

	QueueWaitP50MS float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
	ExecP50MS      float64 `json:"exec_p50_ms"`
	ExecP99MS      float64 `json:"exec_p99_ms"`
}

// Snapshot returns a consistent copy of the metrics. Callers must not
// hold the service mutex; the service takes it.
func (s *Service) Snapshot() MetricsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.metrics
	wait := m.queueWait.values()
	exec := m.exec.values()
	busy := 0.0
	if up := time.Since(s.started).Nanoseconds() * int64(s.cfg.Workers); up > 0 {
		busy = float64(m.ExecNanos) / float64(up)
		if busy > 1 {
			busy = 1
		}
	}
	rate := 0.0
	if m.ExecNanos > 0 {
		rate = float64(m.Promotions) / (float64(m.ExecNanos) / float64(time.Second))
	}
	var counts map[string]int64
	if len(m.traceCounts) > 0 {
		counts = make(map[string]int64, len(m.traceCounts))
		for k, n := range m.traceCounts {
			counts[k] = n
		}
	}
	var speedups map[string]int64
	if len(m.autoparSpeedup) > 0 {
		speedups = make(map[string]int64, len(m.autoparSpeedup))
		for k, n := range m.autoparSpeedup {
			speedups[k] = n
		}
	}
	return MetricsSnapshot{
		Submitted:        m.Submitted,
		Admitted:         m.Admitted,
		Rejected:         m.Rejected,
		Completed:        m.Completed,
		Failed:           m.Failed,
		BudgetExceeded:   m.BudgetExceeded,
		Timeouts:         m.Timeouts,
		Canceled:         m.Canceled,
		Throttled:        m.Throttled,
		AnalysisHits:     m.AnalysisHits,
		ResultHits:       m.ResultHits,
		Compiles:         m.Compiles,
		CompileCacheHits: m.CompileCacheHits,
		CompiledRuns:     m.CompiledRuns,
		ChecksHoisted:    m.ChecksHoisted,
		QueueDepth:       s.queuedN,
		InFlight:         len(s.inflight),
		Workers:          s.cfg.Workers,
		Shards:           len(s.shards),
		Draining:         s.draining,

		Executions:            m.Executions,
		Steals:                m.Steals,
		Batches:               m.Batches,
		Analyses:              m.Analyses,
		SingleflightCollapses: m.SingleflightCollapses,
		ResultEvictions:       s.results.evictions,
		JobsEvicted:           m.JobsEvicted,
		JobsRetained:          len(s.jobs),

		TenantDeficits:   s.shardDeficits(),
		BusyFraction:     busy,
		PromotionRate:    rate,
		TracedJobs:       m.TracedJobs,
		TraceEventCounts: counts,

		AutoparAdmissions:        m.AutoparAdmissions,
		AutoparSitesParallelized: m.AutoparSitesParallelized,
		AutoparSitesBlocked:      m.AutoparSitesBlocked,
		AutoparSpeedupHist:       speedups,
		QueueWaitP50MS:           stats.Percentile(wait, 50),
		QueueWaitP99MS:           stats.Percentile(wait, 99),
		ExecP50MS:                stats.Percentile(exec, 50),
		ExecP99MS:                stats.Percentile(exec, 99),
	}
}
