package serve

import (
	"reflect"
	"testing"

	"tpal/internal/tpal/machine"
	"tpal/internal/tpal/programs"
)

// TestCompiledBackendService pins the compiled execution path end to
// end: a service on the compiled backend returns results and stats
// identical to the interpreter service, the per-fingerprint compiled
// cache absorbs repeat submissions, and the /metrics counters track
// compiles, cache hits, compiled runs, and hoisted checks.
func TestCompiledBackendService(t *testing.T) {
	interp := newTestService(t, Config{Workers: 2})
	compiled := newTestService(t, Config{Workers: 2, Backend: machine.BackendCompiled})

	submit := func(s *Service, a, b int64) JobView {
		j, err := s.Submit(SubmitRequest{
			Tenant: "bench",
			Source: programs.ProdSource,
			Args:   map[string]int64{"a": a, "b": b},
		})
		if err != nil {
			t.Fatal(err)
		}
		return await(t, j)
	}

	for _, args := range [][2]int64{{21, 2}, {9, 9}} {
		want := submit(interp, args[0], args[1])
		got := submit(compiled, args[0], args[1])
		if want.Status != StatusDone || got.Status != StatusDone {
			t.Fatalf("args %v: status interp=%s compiled=%s (%s / %s)",
				args, want.Status, got.Status, want.Error, got.Error)
		}
		if !reflect.DeepEqual(want.Result, got.Result) {
			t.Fatalf("args %v: result divergence:\n  interp:   %v\n  compiled: %v", args, want.Result, got.Result)
		}
		if !reflect.DeepEqual(want.Stats, got.Stats) {
			t.Fatalf("args %v: stats divergence:\n  interp:   %+v\n  compiled: %+v", args, want.Stats, got.Stats)
		}
	}

	// A third distinct-args submission of the same program must reuse
	// the cached lowering, not recompile.
	submit(compiled, 6, 7)

	m := compiled.Snapshot()
	if m.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1 (one program fingerprint)", m.Compiles)
	}
	if m.CompileCacheHits != 2 {
		t.Errorf("CompileCacheHits = %d, want 2", m.CompileCacheHits)
	}
	if m.CompiledRuns != 3 {
		t.Errorf("CompiledRuns = %d, want 3", m.CompiledRuns)
	}
	if m.ChecksHoisted == 0 {
		t.Error("ChecksHoisted = 0, want > 0: the verifier-backed lowering should discharge checks")
	}

	im := interp.Snapshot()
	if im.Compiles != 0 || im.CompiledRuns != 0 {
		t.Errorf("interp service shows compiled activity: compiles=%d runs=%d", im.Compiles, im.CompiledRuns)
	}
}

// TestCompiledBackendRejection pins that admission rejections behave
// identically under the compiled backend: the gate fires before any
// lowering happens.
func TestCompiledBackendRejection(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, Backend: machine.BackendCompiled})
	j, err := s.Submit(SubmitRequest{Source: racySrc})
	if err != nil {
		t.Fatal(err)
	}
	v := await(t, j)
	if v.Status != StatusRejected {
		t.Fatalf("status = %s, want rejected", v.Status)
	}
	if m := s.Snapshot(); m.Compiles != 0 {
		t.Errorf("Compiles = %d, want 0: rejected programs must not be lowered", m.Compiles)
	}
}

// TestCompiledBackendMinipar runs a minipar submission through the
// compiled service, covering the optimizer-rewrite path: the program
// the pool executes is the optimized form, and the lowering must
// target that form.
func TestCompiledBackendMinipar(t *testing.T) {
	src := "params n\nvar total = 0\nparfor i in 0 .. n reduce(total, +) {\n    total = total + i\n}\nreturn total\n"
	interp := newTestService(t, Config{Workers: 2})
	compiled := newTestService(t, Config{Workers: 2, Backend: machine.BackendCompiled})
	run := func(s *Service) JobView {
		j, err := s.Submit(SubmitRequest{
			Lang:   "minipar",
			Source: src,
			Args:   map[string]int64{"n": 50},
		})
		if err != nil {
			t.Fatal(err)
		}
		return await(t, j)
	}
	want := run(interp)
	got := run(compiled)
	if want.Status != StatusDone || got.Status != StatusDone {
		t.Fatalf("status interp=%s compiled=%s (%s / %s)", want.Status, got.Status, want.Error, got.Error)
	}
	if !reflect.DeepEqual(want.Result, got.Result) {
		t.Fatalf("result divergence:\n  interp:   %v\n  compiled: %v", want.Result, got.Result)
	}
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Fatalf("stats divergence:\n  interp:   %+v\n  compiled: %+v", want.Stats, got.Stats)
	}
}
