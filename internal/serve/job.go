package serve

import (
	"time"

	"tpal/internal/minipar/autopar"
	"tpal/internal/tpal"
	"tpal/internal/tpal/machine"
	"tpal/internal/tpal/machine/compile"
	"tpal/internal/trace"
)

// Status is a job's position in the service state machine:
//
//	queued ───────► running ───► done
//	   │               │     ├──► failed           (machine fault / race)
//	   │               │     ├──► budget_exceeded  (fuel spent)
//	   │               │     └──► timeout          (deadline passed)
//	   └──► canceled (drain)
//
// plus rejected, the terminal state of a submission that never passed
// the admission gate. done can also be reached straight from submission
// when the result cache already holds the answer.
type Status string

// Job statuses.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusRejected Status = "rejected"
	StatusFailed   Status = "failed"
	StatusBudget   Status = "budget_exceeded"
	StatusTimeout  Status = "timeout"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s != StatusQueued && s != StatusRunning
}

// Quote is the admission-time cost estimate attached to every admitted
// job: the symbolic work/span bounds from the static estimator (§8 of
// DESIGN.md), the work bound evaluated under the service's assumed trip
// counts, and the step budget the estimate was converted into. The
// budget is the fuel the executor grants the run; exceeding it moves
// the job to budget_exceeded.
type Quote struct {
	Work     string `json:"work"`      // symbolic work bound
	Span     string `json:"span"`      // symbolic span bound
	EstSteps int64  `json:"est_steps"` // work evaluated at the assumed trip counts
	Budget   int64  `json:"budget"`    // granted fuel, in machine steps
	// OptRewrites counts the certified optimizer rewrites applied to the
	// program this quote prices; 0 means the submitted form ran as-is.
	OptRewrites int `json:"opt_rewrites,omitempty"`
	// Trips records, per loop header contributing to the work bound, the
	// trip count the quote priced it at and where that count came from:
	// "inferred" counts are upper bounds the interval analysis proved,
	// "assumed" counts fall back to the service's TripAssume default. An
	// all-inferred quote is honest — the program cannot do more work than
	// the estimate — while any assumed entry marks the quote as a guess.
	Trips map[string]TripQuote `json:"trips,omitempty"`
}

// TripQuote is one loop header's pricing inside a Quote.
type TripQuote struct {
	Count  int64  `json:"count"`  // trip count the quote used
	Source string `json:"source"` // "inferred" or "assumed"
}

// JobStats mirrors machine.Stats in the wire format, the per-job
// execution statistics reported by GET /v1/jobs/{id}.
type JobStats struct {
	Steps           int64 `json:"steps"`
	Work            int64 `json:"work"`
	Span            int64 `json:"span"`
	Forks           int64 `json:"forks"`
	Joins           int64 `json:"joins"`
	Promotions      int64 `json:"promotions"` // heartbeat handler entries
	Signals         int64 `json:"signals"`
	JoinRecords     int64 `json:"join_records"`
	TasksCreated    int64 `json:"tasks_created"`
	MaxLiveTasks    int   `json:"max_live_tasks"`
	MaxPromotionGap int64 `json:"max_promotion_gap"`
}

func statsOf(st machine.Stats) *JobStats {
	return &JobStats{
		Steps:           st.Steps,
		Work:            st.Work,
		Span:            st.Span,
		Forks:           st.Forks,
		Joins:           st.Joins,
		Promotions:      st.HandlerRuns,
		Signals:         st.SignalsDelivered,
		JoinRecords:     st.JoinRecords,
		TasksCreated:    st.TasksCreated,
		MaxLiveTasks:    st.MaxLiveTasks,
		MaxPromotionGap: st.MaxPromotionGap,
	}
}

// JobTrace is the wire summary of a traced execution: the tail of the
// event stream (rendered, capped at jobTraceEventCap entries) plus the
// exact aggregates, which cover overwritten events too. MaxGap is the
// dynamic counterpart of the quote's static promotion-latency bound —
// for latency-finite programs it must not exceed it.
type JobTrace struct {
	Events   []string         `json:"events,omitempty"`
	Retained int              `json:"retained"` // ring events at drain, pre-cap
	Dropped  int64            `json:"dropped"`  // overwritten by ring wrap
	Counts   map[string]int64 `json:"counts"`
	MaxGap   int64            `json:"max_promotion_gap"`
	GapHist  map[string]int64 `json:"gap_hist,omitempty"`
}

// jobTraceEventCap bounds the rendered event list in job views; the
// aggregate counters remain exact beyond it.
const jobTraceEventCap = 64

func jobTraceOf(tr *trace.Trace) *JobTrace {
	jt := &JobTrace{
		Retained: len(tr.Events),
		Dropped:  tr.Dropped,
		Counts:   tr.CountMap(),
		MaxGap:   tr.MaxGap,
		GapHist:  tr.GapHistMap(),
	}
	ev := tr.Events
	if len(ev) > jobTraceEventCap {
		ev = ev[len(ev)-jobTraceEventCap:]
	}
	jt.Events = make([]string, len(ev))
	for i, e := range ev {
		jt.Events[i] = e.String()
	}
	return jt
}

// AutoparSite is one candidate site of the auto-parallelizing pass in
// the wire format: where it was, what it was, and the verdict —
// parallelized (with the profitability model's prediction) or blocked
// with the TP07x code naming the failed dependence argument.
type AutoparSite struct {
	Site         string  `json:"site"` // source position, line:col
	Kind         string  `json:"kind"` // "loop" or "pair"
	Desc         string  `json:"desc"`
	Decision     string  `json:"decision"` // "parallelized" or "blocked TPnnn"
	Detail       string  `json:"detail"`
	Parallelized bool    `json:"parallelized"`
	Speedup      float64 `json:"predicted_speedup,omitempty"`
	// Trips and TripSource mirror the pass's profitability inputs for
	// loop sites: the trip count the model used and whether it was
	// "inferred" by constant propagation or "assumed" from TripAssume.
	Trips      int64  `json:"trips,omitempty"`
	TripSource string `json:"trip_source,omitempty"`
}

// AutoparReport is the job-level summary of an auto_parallelize
// submission: the verdict table plus the program-level predicted
// speedup from the source cost model. Source is the transformed
// minipar program that was actually admitted and executed.
type AutoparReport struct {
	Sites            []AutoparSite `json:"sites"`
	Parallelized     int           `json:"parallelized"`
	Blocked          int           `json:"blocked"`
	PredictedSpeedup float64       `json:"predicted_speedup"`
	SeqWork          int64         `json:"est_seq_work"`
	ParSpan          int64         `json:"est_par_span"`
	Source           string        `json:"source"`
}

func autoparReportOf(res *autopar.Result) *AutoparReport {
	rep := &AutoparReport{
		Sites:            make([]AutoparSite, len(res.Sites)),
		Parallelized:     res.Parallelized,
		Blocked:          res.Blocked,
		PredictedSpeedup: res.Speedup,
		SeqWork:          res.SeqWork,
		ParSpan:          res.ParSpan,
		Source:           res.Source,
	}
	for i, v := range res.Sites {
		rep.Sites[i] = AutoparSite{
			Site:         v.Pos.String(),
			Kind:         v.Kind,
			Desc:         v.Desc,
			Decision:     v.Decision(),
			Detail:       v.Detail(),
			Parallelized: v.Parallelized,
			Speedup:      v.Speedup,
			Trips:        v.Trips,
			TripSource:   v.TripSource,
		}
	}
	return rep
}

// Diag is one admission diagnostic in the wire format, the same shape
// tpal-lint -json emits.
type Diag struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Block    string `json:"block"`
	Instr    int    `json:"instr"`
	Msg      string `json:"msg"`
}

// Job is one submission's record. All fields are guarded by the
// owning Service's mutex; View snapshots them for serialization.
type Job struct {
	ID          string
	Tenant      string
	Fingerprint string
	Status      Status
	Quote       Quote
	Diags       []Diag            // admission diagnostics (rejections)
	Result      map[string]string // final register file, rendered
	Stats       *JobStats
	Trace       *JobTrace      // drained trace summary (traced submissions only)
	Autopar     *AutoparReport // verdict table (auto_parallelize submissions only)
	Error       string
	Cached      bool // result served from the content-addressed result store
	Coalesced   bool // singleflight follower: rode an identical in-flight execution

	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	// Execution inputs, fixed at admission.
	prog      *tpal.Program
	compiled  *compile.Program // closure-threaded form; nil runs the interpreter
	regs      machine.RegFile
	heartbeat int64
	signal    int64
	timeout   time.Duration
	traced    bool  // execute with a per-job tracer attached
	cost      int64 // DRR accounting weight (= Quote.Budget)
	cacheKey  string

	// followers are identical submissions collapsed onto this job by the
	// singleflight registry; they inherit its terminal outcome.
	followers []*Job

	// Event stream state: replayable history, live subscribers, and the
	// trace-frame retention accounting (events.go).
	history          []jobEvent
	subs             []chan jobEvent
	traceHistN       int
	traceHistDropped int64

	cancel func()        // set while running; force-drain cancels through it
	done   chan struct{} // closed when the job reaches a terminal state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is the wire representation of a job.
type JobView struct {
	ID          string            `json:"id"`
	Tenant      string            `json:"tenant"`
	Fingerprint string            `json:"fingerprint"`
	Status      Status            `json:"status"`
	Quote       *Quote            `json:"quote,omitempty"` // nil for rejections: nothing was quoted
	Diags       []Diag            `json:"diags,omitempty"`
	Result      map[string]string `json:"result,omitempty"`
	Stats       *JobStats         `json:"stats,omitempty"`
	Trace       *JobTrace         `json:"trace,omitempty"`
	Autopar     *AutoparReport    `json:"autopar,omitempty"`
	Error       string            `json:"error,omitempty"`
	Cached      bool              `json:"cached,omitempty"`
	Coalesced   bool              `json:"coalesced,omitempty"`
	QueueWaitMS float64           `json:"queue_wait_ms,omitempty"`
	ExecMS      float64           `json:"exec_ms,omitempty"`
}

func (j *Job) view() JobView {
	v := JobView{
		ID:          j.ID,
		Tenant:      j.Tenant,
		Fingerprint: j.Fingerprint,
		Status:      j.Status,
		Diags:       j.Diags,
		Result:      j.Result,
		Stats:       j.Stats,
		Trace:       j.Trace,
		Autopar:     j.Autopar,
		Error:       j.Error,
		Cached:      j.Cached,
		Coalesced:   j.Coalesced,
	}
	if j.Status != StatusRejected {
		q := j.Quote
		v.Quote = &q
	}
	if !j.Started.IsZero() {
		v.QueueWaitMS = float64(j.Started.Sub(j.Submitted)) / float64(time.Millisecond)
	}
	if !j.Finished.IsZero() && !j.Started.IsZero() {
		v.ExecMS = float64(j.Finished.Sub(j.Started)) / float64(time.Millisecond)
	}
	return v
}
