package serve

// drrQueue is a deficit-round-robin fair queue over tenant keys: each
// tenant holds a FIFO of queued jobs and a deficit counter; pop visits
// tenants in ring order, crediting quantum per visit, and dispatches a
// tenant's head job once its deficit covers the job's cost (the quoted
// step budget). A tenant streaming expensive jobs therefore yields the
// pool to cheap-job tenants in proportion to cost, while a lone tenant
// still gets every slot. The queue is not goroutine-safe; the Service
// mutex guards it.
type drrQueue struct {
	quantum int64
	tenants map[string]*tenantQueue
	ring    []*tenantQueue // tenants with queued jobs, round-robin order
	cursor  int
	size    int
}

type tenantQueue struct {
	key     string
	jobs    []*Job
	deficit int64
}

func newDRRQueue(quantum int64) *drrQueue {
	return &drrQueue{quantum: quantum, tenants: make(map[string]*tenantQueue)}
}

func (q *drrQueue) len() int { return q.size }

// push appends a job to its tenant's FIFO, entering the tenant into
// the ring if it was idle.
func (q *drrQueue) push(j *Job) {
	tq := q.tenants[j.Tenant]
	if tq == nil {
		tq = &tenantQueue{key: j.Tenant}
		q.tenants[j.Tenant] = tq
	}
	if len(tq.jobs) == 0 {
		q.ring = append(q.ring, tq)
	}
	tq.jobs = append(tq.jobs, j)
	q.size++
}

// pop removes and returns the next job under DRR, or nil when empty.
// Each full ring pass credits every backlogged tenant one quantum, and
// job costs are bounded by the service's fuel cap, so the scan always
// terminates with a dispatch while jobs are queued.
func (q *drrQueue) pop() *Job {
	if q.size == 0 {
		return nil
	}
	for {
		if q.cursor >= len(q.ring) {
			q.cursor = 0
		}
		tq := q.ring[q.cursor]
		tq.deficit += q.quantum
		if head := tq.jobs[0]; tq.deficit >= head.cost {
			tq.deficit -= head.cost
			tq.jobs = tq.jobs[1:]
			q.size--
			if len(tq.jobs) == 0 {
				// An idle tenant keeps no credit: deficits only meter
				// backlogged tenants against each other.
				tq.deficit = 0
				q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
			} else {
				q.cursor++
			}
			return head
		}
		q.cursor++
	}
}

// deficits snapshots the DRR credit of every backlogged tenant, for
// the /metrics fairness gauge. Idle tenants hold no credit (pop clears
// it), so only the ring is reported. Returns nil when nothing is queued.
func (q *drrQueue) deficits() map[string]int64 {
	if len(q.ring) == 0 {
		return nil
	}
	out := make(map[string]int64, len(q.ring))
	for _, tq := range q.ring {
		out[tq.key] = tq.deficit
	}
	return out
}

// drainAll empties the queue and returns every job that was waiting,
// in tenant-ring order.
func (q *drrQueue) drainAll() []*Job {
	var out []*Job
	for _, tq := range q.ring {
		out = append(out, tq.jobs...)
		tq.jobs = nil
		tq.deficit = 0
	}
	q.ring = q.ring[:0]
	q.cursor = 0
	q.size = 0
	return out
}
