package serve

// drrQueue is a deficit-round-robin fair queue over tenant keys: each
// tenant holds a FIFO of queued jobs and a deficit counter; pop visits
// tenants in ring order, crediting quantum per visit, and dispatches a
// tenant's head job once its deficit covers the job's cost (the quoted
// step budget). A tenant streaming expensive jobs therefore yields the
// pool to cheap-job tenants in proportion to cost, while a lone tenant
// still gets every slot. The queue is not goroutine-safe; each shard's
// mutex guards its own instance.
type drrQueue struct {
	quantum int64
	tenants map[string]*tenantQueue
	ring    []*tenantQueue // tenants with queued jobs, round-robin order
	cursor  int
	size    int
	// visits counts tenant inspections across all pops. It exists to pin
	// the shortfall-crediting fast path: a head job costing cost must be
	// dispatched in O(ring) visits, not O(cost/quantum) ring passes.
	visits int64
}

type tenantQueue struct {
	key     string
	jobs    []*Job
	deficit int64
}

func newDRRQueue(quantum int64) *drrQueue {
	return &drrQueue{quantum: quantum, tenants: make(map[string]*tenantQueue)}
}

func (q *drrQueue) len() int { return q.size }

// push appends a job to its tenant's FIFO, entering the tenant into
// the ring if it was idle.
func (q *drrQueue) push(j *Job) {
	tq := q.tenants[j.Tenant]
	if tq == nil {
		tq = &tenantQueue{key: j.Tenant}
		q.tenants[j.Tenant] = tq
	}
	if len(tq.jobs) == 0 {
		q.ring = append(q.ring, tq)
	}
	tq.jobs = append(tq.jobs, j)
	q.size++
}

// pop removes and returns the next job under DRR, or nil when empty.
// Each visit credits the tenant one quantum; when a full ring pass
// dispatches nothing (every backlogged head job still exceeds its
// deficit), the minimum shortfall across the ring is credited in one
// arithmetic step instead of re-scanning O(cost/quantum) times — the
// dispatch order is identical, because every tenant receives the same
// per-pass credit, so adding k·quantum to all of them at once lands on
// exactly the tenant (and ring position) the slow scan would have
// reached after k passes. A tenant drained to empty leaves both the
// ring and the tenant map: idle tenants keep no credit and no state.
func (q *drrQueue) pop() *Job {
	if q.size == 0 {
		return nil
	}
	for {
		for n := len(q.ring); n > 0; n-- {
			if q.cursor >= len(q.ring) {
				q.cursor = 0
			}
			tq := q.ring[q.cursor]
			tq.deficit += q.quantum
			q.visits++
			if head := tq.jobs[0]; tq.deficit >= head.cost {
				tq.deficit -= head.cost
				tq.jobs = tq.jobs[1:]
				q.size--
				if len(tq.jobs) == 0 {
					// An idle tenant keeps no credit and no map entry:
					// deficits only meter backlogged tenants against each
					// other, and a tenant key seen once must not leak a
					// tenantQueue forever.
					delete(q.tenants, tq.key)
					q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
				} else {
					q.cursor++
				}
				return head
			}
			q.cursor++
		}
		// Full uncredited pass: no head job is affordable yet. Compute how
		// many more whole passes the smallest shortfall needs and credit
		// them all at once.
		passes := int64(1) << 62
		for _, tq := range q.ring {
			short := tq.jobs[0].cost - tq.deficit
			p := (short + q.quantum - 1) / q.quantum
			if p < passes {
				passes = p
			}
		}
		if passes > 1 {
			add := (passes - 1) * q.quantum
			for _, tq := range q.ring {
				tq.deficit += add
			}
		}
	}
}

// deficits snapshots the DRR credit of every backlogged tenant, for
// the /metrics fairness gauge. Idle tenants hold no credit (pop clears
// it), so only the ring is reported. Returns nil when nothing is queued.
func (q *drrQueue) deficits() map[string]int64 {
	if len(q.ring) == 0 {
		return nil
	}
	out := make(map[string]int64, len(q.ring))
	for _, tq := range q.ring {
		out[tq.key] = tq.deficit
	}
	return out
}

// drainAll empties the queue and returns every job that was waiting,
// in tenant-ring order. Tenant state is dropped wholesale.
func (q *drrQueue) drainAll() []*Job {
	var out []*Job
	for _, tq := range q.ring {
		out = append(out, tq.jobs...)
		tq.jobs = nil
		tq.deficit = 0
	}
	q.ring = q.ring[:0]
	q.tenants = make(map[string]*tenantQueue)
	q.cursor = 0
	q.size = 0
	return out
}
