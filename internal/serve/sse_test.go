package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	kind string
	data []byte
}

// readSSE consumes an SSE stream until (and including) the first
// "done" frame, or until the stream ends.
func readSSE(t *testing.T, body *bufio.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var kind string
	var data []byte
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return frames
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "": // frame boundary
			if kind == "" && data == nil {
				continue
			}
			frames = append(frames, sseFrame{kind: kind, data: data})
			if kind == eventKindDone {
				return frames
			}
			kind, data = "", nil
		}
	}
}

// TestJobEventsSSE drives the event stream end to end over HTTP: a
// traced job is submitted, GET /v1/jobs/{id}/events replays and
// follows its stream, and the stream carries status transitions, at
// least one batch of live tracer events, and a final done frame with
// the full job view.
func TestJobEventsSSE(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, Heartbeat: 20})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	buf, _ := json.Marshal(SubmitRequest{
		Tenant: "alice",
		Source: sumsqSrc,
		Args:   map[string]int64{"n": 200},
	})
	resp, err := http.Post(srv.URL+"/v1/jobs?trace=1", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}

	evResp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer evResp.Body.Close()
	if evResp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d, want 200", evResp.StatusCode)
	}
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}

	frames := readSSE(t, bufio.NewReader(evResp.Body))
	if len(frames) == 0 {
		t.Fatal("no SSE frames received")
	}

	var statuses []Status
	var traceFrames, traceEvents int
	for _, f := range frames {
		switch f.kind {
		case eventKindStatus:
			var d jobEventData
			if err := json.Unmarshal(f.data, &d); err != nil {
				t.Fatalf("bad status frame %q: %v", f.data, err)
			}
			if d.ID != view.ID {
				t.Errorf("status frame for job %q, want %q", d.ID, view.ID)
			}
			statuses = append(statuses, d.Status)
		case eventKindTrace:
			var d jobEventData
			if err := json.Unmarshal(f.data, &d); err != nil {
				t.Fatalf("bad trace frame %q: %v", f.data, err)
			}
			traceFrames++
			traceEvents += len(d.Events)
		}
	}

	if len(statuses) == 0 || statuses[0] != StatusQueued {
		t.Errorf("status sequence %v, want it to open with queued", statuses)
	}
	last := statuses[len(statuses)-1]
	if !last.Terminal() {
		t.Errorf("status sequence %v does not end terminal", statuses)
	}
	if traceFrames == 0 || traceEvents == 0 {
		t.Errorf("traced job streamed %d trace frames / %d events, want >= 1", traceFrames, traceEvents)
	}

	final := frames[len(frames)-1]
	if final.kind != eventKindDone {
		t.Fatalf("final frame kind = %q, want done", final.kind)
	}
	var done JobView
	if err := json.Unmarshal(final.data, &done); err != nil {
		t.Fatalf("bad done frame: %v", err)
	}
	if done.Status != StatusDone {
		t.Errorf("done frame status = %s (%s), want done", done.Status, done.Error)
	}
	if done.Trace == nil || done.Trace.Retained == 0 {
		t.Errorf("done frame carries no trace summary: %+v", done.Trace)
	}
}

// TestJobEventsSSEUnknownJob: streaming an unknown id is a 404, same
// contract as the plain job GET.
func TestJobEventsSSEUnknownJob(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/jobs/j999999/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}
