package serve

import (
	"errors"
	"strings"
	"testing"

	"tpal/internal/tpal/programs"
)

// seqReduceSrc is a sequentially-written plus-reduce kernel: the
// autopar pass should fold the prologue, rewrite the loop to
// parfor reduce(s, +), and the admitted job should execute the
// transformed program with real forks.
const seqReduceSrc = `
params n
var s = 0
var i = 0
while i < n {
    s = s + i
    i = i + 1
}
return s
`

// loopCarriedSrc has a genuine loop-carried dependence (s = s * 2 + 1
// is not in accumulate shape), so the site must be blocked with a
// TP07x verdict while the job still runs — sequentially.
const loopCarriedSrc = `
params n
var s = 0
var i = 0
while i < n {
    s = s * 2 + 1
    i = i + 1
}
return s
`

func TestAutoParallelizeSubmission(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	j, err := s.Submit(SubmitRequest{
		Tenant:          "alice",
		Lang:            "minipar",
		Source:          seqReduceSrc,
		Args:            map[string]int64{"n": 400},
		Heartbeat:       30,
		AutoParallelize: true,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := await(t, j)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s), want done", v.Status, v.Error)
	}
	if got, want := v.Result["result"], "79800"; got != want { // 400*399/2
		t.Errorf("result = %q, want %q", got, want)
	}
	if v.Autopar == nil {
		t.Fatal("job view carries no autopar report")
	}
	rep := v.Autopar
	if rep.Parallelized < 1 {
		t.Errorf("parallelized = %d, want >= 1; sites: %+v", rep.Parallelized, rep.Sites)
	}
	if rep.PredictedSpeedup <= 1 {
		t.Errorf("predicted speedup = %v, want > 1", rep.PredictedSpeedup)
	}
	if !strings.Contains(rep.Source, "parfor") || !strings.Contains(rep.Source, "reduce(s, +)") {
		t.Errorf("transformed source lost the reduction parfor:\n%s", rep.Source)
	}
	var sawLoop bool
	for _, site := range rep.Sites {
		if site.Kind == "loop" && site.Parallelized {
			sawLoop = true
			if site.Decision != "parallelized" {
				t.Errorf("parallelized site decision = %q", site.Decision)
			}
			if site.Speedup <= 1 {
				t.Errorf("site speedup = %v, want > 1", site.Speedup)
			}
		}
	}
	if !sawLoop {
		t.Errorf("no parallelized loop site in %+v", rep.Sites)
	}
	// The machine must have executed the transformed (forking) program.
	if v.Stats == nil || v.Stats.Forks == 0 {
		t.Errorf("execution shows no forks: %+v", v.Stats)
	}

	m := s.Snapshot()
	if m.AutoparAdmissions != 1 {
		t.Errorf("autopar_admissions = %d, want 1", m.AutoparAdmissions)
	}
	if m.AutoparSitesParallelized < 1 {
		t.Errorf("autopar_sites_parallelized = %d, want >= 1", m.AutoparSitesParallelized)
	}
	if len(m.AutoparSpeedupHist) == 0 {
		t.Error("autopar_speedup_hist is empty after an autopar admission")
	}
	total := int64(0)
	for _, n := range m.AutoparSpeedupHist {
		total += n
	}
	if total != m.AutoparAdmissions {
		t.Errorf("speedup histogram sums to %d, want %d", total, m.AutoparAdmissions)
	}
}

func TestAutoParallelizeBlockedSiteStillRuns(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	j, err := s.Submit(SubmitRequest{
		Source:          loopCarriedSrc,
		Args:            map[string]int64{"n": 5},
		AutoParallelize: true,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := await(t, j)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s), want done", v.Status, v.Error)
	}
	if got, want := v.Result["result"], "31"; got != want { // 2^5 - 1
		t.Errorf("result = %q, want %q", got, want)
	}
	if v.Autopar == nil {
		t.Fatal("job view carries no autopar report")
	}
	var blocked bool
	for _, site := range v.Autopar.Sites {
		if !site.Parallelized && strings.HasPrefix(site.Decision, "blocked TP07") {
			blocked = true
		}
	}
	if !blocked {
		t.Errorf("no blocked TP07x site in %+v", v.Autopar.Sites)
	}
	m := s.Snapshot()
	if m.AutoparSitesBlocked < 1 {
		t.Errorf("autopar_sites_blocked = %d, want >= 1", m.AutoparSitesBlocked)
	}
}

func TestAutoParallelizeRequiresMinipar(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	_, err := s.Submit(SubmitRequest{
		Source:          programs.ProdSource,
		Args:            map[string]int64{"a": 2, "b": 3},
		AutoParallelize: true,
	})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
	if err == nil || !strings.Contains(err.Error(), "minipar") {
		t.Errorf("error does not explain the lang restriction: %v", err)
	}
}

func TestAutoParallelizeCacheHitKeepsReport(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	req := SubmitRequest{
		Source:          seqReduceSrc,
		Args:            map[string]int64{"n": 100},
		AutoParallelize: true,
	}
	j1, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	await(t, j1)
	j2, err := s.Submit(req)
	if err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	v := await(t, j2)
	if !v.Cached {
		t.Fatalf("second identical submission was not a cache hit: %+v", v)
	}
	if v.Autopar == nil || v.Autopar.Parallelized < 1 {
		t.Errorf("cache-hit job lost its autopar report: %+v", v.Autopar)
	}
	if m := s.Snapshot(); m.AutoparAdmissions != 2 {
		t.Errorf("autopar_admissions = %d, want 2", m.AutoparAdmissions)
	}
}
