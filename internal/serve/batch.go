package serve

import (
	"fmt"
	"sync"
	"time"

	"tpal/internal/tpal"
	"tpal/internal/tpal/machine"
	"tpal/internal/tpal/machine/compile"
)

// Batched admission: concurrent Submit calls are collected into
// batches by a leader/follower combiner. The leader drains whatever
// accumulated while it worked, runs the expensive admission analysis
// once per unique (fingerprint, entry) key per batch — concurrently
// across keys — and then finalizes the whole batch under a single
// service-mutex hold with one lock acquisition per destination shard.
// Followers just wait on their work item; under a submission burst the
// per-job cost amortizes to one map lookup and one queue push.

// submitWork is one submission moving through the batched admission
// pipeline. prepare fills the parse-derived fields; processBatch fills
// adm/compiled; finalizeBatch fills j or err and closes done.
type submitWork struct {
	req     SubmitRequest
	prog    *tpal.Program
	entry   []tpal.Reg
	autoRep *AutoparReport
	fp      string
	key     string // admitKey(fp, entry)

	adm      *admission
	compiled *compile.Program

	j    *Job
	err  error
	done chan struct{}
}

// batcher is the combining point: pending work plus whether a leader
// is currently processing.
type batcher struct {
	mu      sync.Mutex
	pending []*submitWork
	leading bool
}

// enqueueBatch hands one submission to the combiner and blocks until a
// leader (possibly this caller) has finalized it. The first caller to
// find no leader becomes one and keeps draining batches until the
// pending list is empty, so every submission is processed by exactly
// one leader pass and no goroutine waits on more than one batch.
func (s *Service) enqueueBatch(w *submitWork) {
	b := &s.batch
	b.mu.Lock()
	b.pending = append(b.pending, w)
	if b.leading {
		b.mu.Unlock()
		<-w.done
		return
	}
	b.leading = true
	for len(b.pending) > 0 {
		batch := b.pending
		b.pending = nil
		b.mu.Unlock()
		s.processBatch(batch)
		b.mu.Lock()
	}
	b.leading = false
	b.mu.Unlock()
}

// processBatch runs the admission pipeline for one batch: cached
// verdicts are reused, missing (fingerprint, entry) keys are analyzed
// once each — concurrently — and the batch is finalized atomically.
func (s *Service) processBatch(batch []*submitWork) {
	// Phase 1: resolve analysis verdicts against the cache; group the
	// misses by admission key so each key is analyzed exactly once.
	need := make(map[string][]*submitWork)
	s.mu.Lock()
	s.metrics.Batches++
	for _, w := range batch {
		if a, ok := s.analysisCache[w.key]; ok {
			w.adm = a
			s.metrics.AnalysisHits++
			continue
		}
		need[w.key] = append(need[w.key], w)
	}
	s.mu.Unlock()

	// Phase 2: analyze the missing keys concurrently. analyze takes no
	// locks, so the batch pays max (not sum) of the pipeline latencies.
	if len(need) > 0 {
		var wg sync.WaitGroup
		for _, group := range need {
			lead := group[0]
			wg.Add(1)
			go func() {
				defer wg.Done()
				lead.adm = s.analyze(lead.prog, lead.entry, lead.fp)
			}()
		}
		wg.Wait()

		s.mu.Lock()
		for key, group := range need {
			a := group[0].adm
			if prev, ok := s.analysisCache[key]; ok {
				// Lost a race against a direct admit() caller; their verdict
				// is for the same key, so every batch member is a cache hit.
				a = prev
				s.metrics.AnalysisHits += int64(len(group))
			} else {
				s.analysisCache[key] = a
				s.metrics.Analyses++
				s.metrics.AnalysisHits += int64(len(group) - 1)
			}
			for _, w := range group {
				w.adm = a
			}
		}
		s.mu.Unlock()
	}

	// Phase 3: compiled backend — lower each admitted program (the
	// compiled cache dedupes repeats within and across batches).
	if s.cfg.Backend == machine.BackendCompiled {
		for _, w := range batch {
			if w.adm.rejected {
				continue
			}
			prog := w.prog
			if w.adm.optimized != nil {
				prog = w.adm.optimized
			}
			w.compiled = s.compiledFor(w.key, prog, w.entry)
		}
	}

	s.finalizeBatch(batch)
	for _, w := range batch {
		close(w.done)
	}
}

// finalizeBatch admits the whole batch under one service-mutex hold:
// per-submission outcome (reject / cached / coalesce / throttle /
// queue), then one shard-lock acquisition per destination shard to push
// everything that queued, then a single worker wake-up.
func (s *Service) finalizeBatch(batch []*submitWork) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.draining {
		for _, w := range batch {
			w.err = ErrDraining
		}
		return
	}

	groups := make(map[int][]*Job)
	pushed := 0
	for _, w := range batch {
		req, adm := w.req, w.adm
		prog := w.prog
		if adm.optimized != nil {
			prog = adm.optimized
		}

		tenant := req.Tenant
		if tenant == "" {
			tenant = "anonymous"
		}
		heartbeat := s.cfg.Heartbeat
		if req.Heartbeat > 0 {
			heartbeat = req.Heartbeat
		}
		timeout := s.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
		regs := make(machine.RegFile, len(req.Args))
		for k, v := range req.Args {
			regs[tpal.Reg(k)] = machine.IntV(v)
		}

		j := &Job{
			Tenant:      tenant,
			Fingerprint: adm.fingerprint,
			Quote:       adm.quote,
			Autopar:     w.autoRep,
			Submitted:   now,
			prog:        prog,
			compiled:    w.compiled,
			regs:        regs,
			heartbeat:   heartbeat,
			signal:      s.cfg.SignalPeriod,
			timeout:     timeout,
			traced:      req.Trace,
			done:        make(chan struct{}),
		}
		if req.Fuel > 0 && req.Fuel < j.Quote.Budget {
			j.Quote.Budget = req.Fuel
		}
		j.cost = j.Quote.Budget
		if j.cost <= 0 {
			j.cost = 1
		}
		j.cacheKey = resultKey(adm.fingerprint, req.Args, heartbeat, s.cfg.SignalPeriod)

		s.seq++
		j.ID = fmt.Sprintf("j%06d", s.seq)
		w.j = j

		primary, inflight := s.primaries[j.cacheKey]
		coalesce := inflight && !j.traced && primary.Quote.Budget == j.Quote.Budget
		var cached *cachedResult
		if !j.traced {
			cached = s.results.get(j.cacheKey)
		}

		switch {
		case adm.rejected:
			j.Status = StatusRejected
			j.Diags = adm.diags
			j.Error = adm.reason
			j.Finished = now
			s.jobs[j.ID] = j
			s.metrics.Rejected++
			s.finishLocked(j)

		case cached != nil:
			j.Status = StatusDone
			j.Result = cached.result
			j.Stats = cached.stats
			j.Cached = true
			j.Started = now
			j.Finished = now
			s.jobs[j.ID] = j
			s.metrics.ResultHits++
			s.metrics.Admitted++
			s.metrics.Completed++
			s.metrics.noteAutopar(j.Autopar)
			s.finishLocked(j)

		case coalesce:
			// Singleflight: an identical submission is already in flight;
			// ride it instead of executing again.
			j.Status = StatusQueued
			j.Coalesced = true
			primary.followers = append(primary.followers, j)
			s.jobs[j.ID] = j
			s.metrics.Admitted++
			s.metrics.SingleflightCollapses++
			s.metrics.noteAutopar(j.Autopar)
			s.publishLocked(j, statusEvent(j))

		case s.queuedN >= s.cfg.QueueCap:
			s.metrics.Throttled++
			w.j = nil
			w.err = ErrQueueFull

		default:
			j.Status = StatusQueued
			s.jobs[j.ID] = j
			s.queuedN++
			if _, exists := s.primaries[j.cacheKey]; !exists {
				s.primaries[j.cacheKey] = j
			}
			s.metrics.Admitted++
			s.metrics.noteAutopar(j.Autopar)
			s.publishLocked(j, statusEvent(j))
			idx := tenantShard(tenant, len(s.shards))
			groups[idx] = append(groups[idx], j)
			pushed++
		}
	}

	for idx, js := range groups {
		sh := s.shards[idx]
		sh.mu.Lock()
		for _, j := range js {
			sh.q.push(j)
		}
		sh.mu.Unlock()
		s.qdepth.Add(int64(len(js)))
	}
	s.pruneLocked(now)
	if pushed > 0 {
		s.idleMu.Lock()
		s.idleCond.Broadcast()
		s.idleMu.Unlock()
	}
}
