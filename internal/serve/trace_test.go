package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"tpal/internal/tpal/programs"
)

func TestTracedJobCarriesTrace(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	j, err := s.Submit(SubmitRequest{
		Tenant: "alice",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 6, "b": 7},
		Trace:  true,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := await(t, j)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s), want done", v.Status, v.Error)
	}
	if v.Trace == nil {
		t.Fatal("traced job has no trace")
	}
	if len(v.Trace.Events) == 0 || v.Trace.Counts["task-start"] == 0 {
		t.Fatalf("trace looks empty: %+v", v.Trace)
	}
	// The dynamic max gap must respect the static bound the admission
	// pipeline proved for this latency-finite program.
	if v.Stats != nil && v.Trace.MaxGap != v.Stats.MaxPromotionGap {
		t.Errorf("trace max gap %d != stats max gap %d", v.Trace.MaxGap, v.Stats.MaxPromotionGap)
	}

	// An untraced submission of the same program carries no trace (and
	// may legitimately hit the result cache).
	j2, err := s.Submit(SubmitRequest{
		Tenant: "alice",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 6, "b": 7},
	})
	if err != nil {
		t.Fatalf("Submit untraced: %v", err)
	}
	if v2 := await(t, j2); v2.Trace != nil {
		t.Error("untraced job unexpectedly carries a trace")
	}
}

func TestTracedSubmissionBypassesResultCache(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	req := SubmitRequest{
		Tenant: "alice",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 3, "b": 5},
	}
	await(t, mustSubmit(t, s, req)) // warm the result cache

	req.Trace = true
	v := await(t, mustSubmit(t, s, req))
	if v.Cached {
		t.Fatal("traced submission served from cache: trace would be fabricated")
	}
	if v.Trace == nil {
		t.Fatal("traced job has no trace")
	}
}

func mustSubmit(t *testing.T, s *Service, req SubmitRequest) *Job {
	t.Helper()
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return j
}

func TestHTTPTraceQueryParam(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"tenant":"alice","source":` + jsonString(programs.ProdSource) + `,"args":{"a":2,"b":2}}`
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs?trace=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	j, ok := s.Job(view.ID)
	if !ok {
		t.Fatalf("job %s not found", view.ID)
	}
	if v := await(t, j); v.Trace == nil {
		t.Fatal("?trace=1 did not attach a tracer")
	}
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func TestMetricsGauges(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	await(t, mustSubmit(t, s, SubmitRequest{
		Tenant: "alice",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 4, "b": 4},
		Trace:  true,
	}))

	snap := s.Snapshot()
	if snap.TracedJobs != 1 {
		t.Errorf("traced_jobs = %d, want 1", snap.TracedJobs)
	}
	if snap.BusyFraction < 0 || snap.BusyFraction > 1 {
		t.Errorf("executor_busy_fraction out of range: %f", snap.BusyFraction)
	}
	if snap.BusyFraction == 0 {
		t.Error("executor_busy_fraction zero after a completed run")
	}
	if snap.TraceEventCounts["task-start"] == 0 {
		t.Errorf("trace_event_counts missing task-start: %v", snap.TraceEventCounts)
	}
	if snap.PromotionRate < 0 {
		t.Errorf("promotion_rate_per_sec negative: %f", snap.PromotionRate)
	}
	// prod's heartbeat loop promotes under the service's default ♥.
	if snap.TraceEventCounts["promotion"] > 0 && snap.PromotionRate == 0 {
		t.Error("promotions recorded but rate is zero")
	}

	// Queue a second tenant's job behind a hook to observe deficits
	// while backlogged is racy in a unit test; instead just check the
	// accessor shape on the empty queue.
	if d := snap.TenantDeficits; d != nil && len(d) == 0 {
		t.Errorf("tenant_deficits should be nil when empty, got %v", d)
	}
}
