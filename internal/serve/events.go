package serve

import (
	"encoding/json"
	"time"
)

// Job event streaming: every job carries a bounded history of events
// (status transitions and, for traced jobs, batches of live tracer
// events) plus a set of subscriber channels. GET /v1/jobs/{id}/events
// replays the history as SSE frames and then follows the live feed
// until the job reaches a terminal state.

// Event kinds on the SSE stream. The terminal frame is always "done"
// (the full JobView), appended by the handler after the live channel
// closes, so a client can stop at the first done frame.
const (
	eventKindStatus = "status"
	eventKindTrace  = "trace"
	eventKindDone   = "done"
)

// jobEvent is one frame on a job's event stream.
type jobEvent struct {
	Kind string
	Data jobEventData
}

// jobEventData is the JSON payload of a status or trace frame.
type jobEventData struct {
	ID     string `json:"id"`
	Status Status `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	// Events carries a batch of rendered tracer events (trace frames
	// only). Batches bound the frame rate: the pump coalesces whatever
	// the tracer produced since the last flush.
	Events []string `json:"events,omitempty"`
	// Dropped counts tracer events the live feed had to skip because the
	// subscriber buffer was full; the job's final trace summary remains
	// exact regardless.
	Dropped int64 `json:"dropped,omitempty"`
}

func (e jobEvent) json() []byte {
	buf, err := json.Marshal(e.Data)
	if err != nil { // cannot happen for this struct; keep the stream well-formed
		return []byte("{}")
	}
	return buf
}

// statusEvent renders a job's current status as a stream frame.
func statusEvent(j *Job) jobEvent {
	return jobEvent{Kind: eventKindStatus, Data: jobEventData{ID: j.ID, Status: j.Status, Error: j.Error}}
}

const (
	// subBuffer is the per-subscriber channel depth; a subscriber that
	// falls further behind loses intermediate frames (never the terminal
	// state, which the handler re-reads from the job record).
	subBuffer = 256
	// traceHistCap bounds how many trace frames a job's replayable
	// history retains; the exact aggregate counts live in the final
	// JobTrace summary, so late subscribers lose only the event text.
	traceHistCap = 128
)

// publishLocked appends an event to the job's history and offers it to
// every live subscriber without blocking. Callers hold the service
// mutex.
func (s *Service) publishLocked(j *Job, ev jobEvent) {
	if ev.Kind == eventKindTrace {
		if j.traceHistN >= traceHistCap {
			j.traceHistDropped += int64(len(ev.Data.Events))
		} else {
			j.history = append(j.history, ev)
			j.traceHistN++
		}
	} else {
		j.history = append(j.history, ev)
	}
	for _, c := range j.subs {
		select {
		case c <- ev:
		default: // slow subscriber: drop the frame, keep the service moving
		}
	}
}

// subscribeJob returns the replayable history of a job plus a live
// channel for what follows. The channel is nil when the job is already
// terminal (the history holds everything there is). cancel detaches
// the subscription; it is safe to call after the channel closed.
func (s *Service) subscribeJob(id string) (replay []jobEvent, live <-chan jobEvent, cancel func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked(time.Now())
	j, found := s.jobs[id]
	if !found {
		return nil, nil, nil, false
	}
	replay = append([]jobEvent(nil), j.history...)
	if j.Status.Terminal() {
		return replay, nil, func() {}, true
	}
	c := make(chan jobEvent, subBuffer)
	j.subs = append(j.subs, c)
	cancel = func() {
		s.mu.Lock()
		for i, sc := range j.subs {
			if sc == c {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
	}
	return replay, c, cancel, true
}
