package serve

import (
	"hash/fnv"
	"sync"
)

// shard is one independently locked slice of the admission queue: a
// DRR queue over the tenants that hash here, guarded by its own mutex
// so executors and admitters on different shards never contend. Lock
// order: a holder of the service mutex may take a shard mutex (batch
// pushes, drain), but a shard mutex holder must never take the service
// mutex — workers pop under the shard lock alone and only then touch
// service state.
type shard struct {
	mu sync.Mutex
	q  *drrQueue
}

// tenantShard maps a tenant key onto a shard index by FNV-1a hash, so
// a tenant's jobs always share one queue (and its DRR deficit meters
// the tenant coherently) while distinct tenants spread across shards.
func tenantShard(tenant string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(tenant))
	return int(h.Sum32() % uint32(n))
}

// take pops the next job for a worker with the given shard affinity:
// the worker's own shard first, then the others in ring order (work
// stealing — a shard that runs dry serves its executor from whichever
// shard still has backlog). Reports whether the job was stolen.
func (s *Service) take(affinity int) (*Job, bool) {
	n := len(s.shards)
	for i := 0; i < n; i++ {
		sh := s.shards[(affinity+i)%n]
		sh.mu.Lock()
		j := sh.q.pop()
		if j != nil {
			s.qdepth.Add(-1)
			sh.mu.Unlock()
			return j, i != 0
		}
		sh.mu.Unlock()
	}
	return nil, false
}

// shardDeficits merges the per-shard DRR credit maps for the /metrics
// fairness gauge; a tenant lives on exactly one shard, so the merge
// never collides. Callers hold the service mutex (shard locks nest
// under it).
func (s *Service) shardDeficits() map[string]int64 {
	var out map[string]int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		d := sh.q.deficits()
		sh.mu.Unlock()
		if len(d) == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]int64, len(d))
		}
		for k, v := range d {
			out[k] = v
		}
	}
	return out
}
