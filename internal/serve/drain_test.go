package serve

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"tpal/internal/tpal/programs"
)

// waitGoroutines asserts the goroutine count returns to (at most) the
// pre-test level, retrying because exiting goroutines unwind
// asynchronously.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	var now int
	for i := 0; i < 100; i++ {
		now = runtime.NumGoroutine()
		if now <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after drain", before, now)
}

// TestGracefulDrain pins the drain contract: in-flight jobs run to
// completion, queued jobs are rejected as canceled, later submissions
// bounce with ErrDraining, and every worker goroutine exits.
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	release := make(chan struct{})
	started := make(chan *Job, 1)
	s := New(Config{Workers: 1, QueueCap: 16})
	s.setRunningHook(func(j *Job) {
		select {
		case started <- j:
		default:
		}
		<-release
	})

	submit := func(a int64) *Job {
		t.Helper()
		j, err := s.Submit(SubmitRequest{
			Tenant: "drain",
			Source: programs.ProdSource,
			Args:   map[string]int64{"a": a, "b": 2},
		})
		if err != nil {
			t.Fatalf("Submit(a=%d): %v", a, err)
		}
		return j
	}

	inflight := submit(3)
	<-started // the lone worker now holds the in-flight job captive

	queued := []*Job{submit(4), submit(5), submit(6)}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Queued jobs must be rejected promptly, while the in-flight job is
	// still captive.
	for _, j := range queued {
		select {
		case <-j.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("queued job %s not canceled during drain", j.ID)
		}
		if v := j.view(); v.Status != StatusCanceled {
			t.Errorf("queued job %s: status %s, want canceled", j.ID, v.Status)
		}
	}

	// New submissions bounce.
	if _, err := s.Submit(SubmitRequest{Source: programs.ProdSource, Args: map[string]int64{"a": 1, "b": 1}}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain: err = %v, want ErrDraining", err)
	}

	// Release the captive job: it must complete, not be canceled.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	v := await(t, inflight)
	if v.Status != StatusDone {
		t.Errorf("in-flight job: status %s (%s), want done", v.Status, v.Error)
	}
	if v.Result["c"] != "6" {
		t.Errorf("in-flight job result c = %q, want 6", v.Result["c"])
	}

	waitGoroutines(t, before)
}

// TestForcedDrain: when the drain context expires, in-flight jobs are
// interrupted through their run contexts instead of being awaited
// forever, and the workers still exit cleanly.
func TestForcedDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{
		Workers:   1,
		FuelCap:   1 << 40,
		MinBudget: 1 << 40,
		// The job itself would run for minutes; only cancellation stops it.
		DefaultTimeout: 10 * time.Minute,
		MaxTimeout:     10 * time.Minute,
	})
	started := make(chan struct{}, 1)
	s.setRunningHook(func(*Job) {
		select {
		case started <- struct{}{}:
		default:
		}
	})
	j, err := s.Submit(SubmitRequest{
		Tenant: "hog",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 1 << 40, "b": 1},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started // ensure the worker is inside machine.Run before draining

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v, want DeadlineExceeded (forced drain)", err)
	}
	v := await(t, j)
	if v.Status != StatusCanceled {
		t.Errorf("interrupted job: status %s (%s), want canceled", v.Status, v.Error)
	}

	waitGoroutines(t, before)
}

// TestDrainIdempotent: a second drain returns immediately without
// disturbing anything.
func TestDrainIdempotent(t *testing.T) {
	s := New(Config{Workers: 2})
	ctx := context.Background()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("first Drain: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	if !s.Draining() {
		t.Error("service not marked draining")
	}
}
