package serve

import (
	"testing"
	"time"

	"tpal/internal/tpal/programs"
)

// TestJobRetentionCap pins the job-table leak fix: terminal records
// beyond JobRetention are evicted oldest-first, the map stays bounded,
// and a GET on an evicted id reports not-found. (The original service
// kept every job record forever.)
func TestJobRetentionCap(t *testing.T) {
	const keep = 8
	s := newTestService(t, Config{Workers: 2, JobRetention: keep, JobTTL: time.Hour})

	const n = 40
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		j, err := s.Submit(SubmitRequest{
			Tenant: "alice",
			Source: programs.ProdSource,
			Args:   map[string]int64{"a": 3, "b": int64(i)}, // distinct cache keys
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		await(t, j)
		ids = append(ids, j.ID)
	}

	s.mu.Lock()
	size := len(s.jobs)
	s.mu.Unlock()
	if size > keep {
		t.Errorf("job table holds %d records, want <= %d", size, keep)
	}

	if _, ok := s.JobView(ids[0]); ok {
		t.Errorf("oldest job %s still resolvable past the retention cap", ids[0])
	}
	last := ids[len(ids)-1]
	v, ok := s.JobView(last)
	if !ok {
		t.Fatalf("newest job %s evicted, want retained", last)
	}
	if v.Status != StatusDone {
		t.Errorf("newest job status = %s, want done", v.Status)
	}
	if m := s.Snapshot(); m.JobsEvicted < int64(n-keep) {
		t.Errorf("JobsEvicted = %d, want >= %d", m.JobsEvicted, n-keep)
	}
}

// TestJobRetentionTTL evicts terminal records by age: after the TTL
// passes, a lookup prunes the record and reports not-found.
func TestJobRetentionTTL(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, JobRetention: 1024, JobTTL: 30 * time.Millisecond})
	j, err := s.Submit(SubmitRequest{
		Tenant: "alice",
		Source: programs.ProdSource,
		Args:   map[string]int64{"a": 2, "b": 2},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	await(t, j)
	if _, ok := s.JobView(j.ID); !ok {
		t.Fatalf("job %s missing immediately after completion", j.ID)
	}
	time.Sleep(80 * time.Millisecond)
	if _, ok := s.JobView(j.ID); ok {
		t.Errorf("job %s still resolvable past its TTL", j.ID)
	}
}
