// Package serve is the multi-tenant TPAL execution service: jobs —
// TPAL assembly or minipar programs plus entry arguments — are
// canonicalized and fingerprinted, pushed through the full static
// analysis pipeline as an admission gate, quoted a step budget derived
// from the symbolic work bound, queued under per-tenant deficit
// round-robin, and executed on a fixed pool of worker goroutines
// running the abstract machine under the service's shared heartbeat
// configuration with per-job fuel and deadlines. The HTTP surface lives
// in http.go; cmd/tpal-serve is the daemon.
//
// The subsystem exists because heartbeat scheduling is exactly the
// substrate a shared service needs: every admitted job is
// serial-by-default and only promotes parallelism at analysis-certified
// promotion points, so a fixed worker pool can run many mutually
// untrusted jobs without oversubscription, and the same analyses that
// prove a program safe also price it.
//
// Dispatch is sharded (shard.go): tenants hash onto independently
// locked DRR queues, each executor has an affinity shard and steals
// from the others when its own runs dry. Admission is batched
// (batch.go): concurrent submissions combine into leader-processed
// batches that analyze once per unique program and admit under one
// mutex hold. Completed results live in a bounded LRU store (store.go)
// and identical in-flight submissions collapse onto one execution via
// the singleflight registry. Every job carries a replayable event
// stream (events.go) served over SSE by GET /v1/jobs/{id}/events.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tpal/internal/tpal"
	"tpal/internal/tpal/machine"
	"tpal/internal/tpal/machine/compile"
	"tpal/internal/trace"
)

// jobTraceCapacity is the per-job ring size: 1<<14 events bounds a
// traced job's memory at ~650 KB while keeping whole small runs.
const jobTraceCapacity = 1 << 14

// Submission errors. The HTTP layer maps these to status codes; direct
// callers can errors.Is against them.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity
	// (HTTP 429).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining means the service has stopped admitting (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting jobs")
	// ErrBadRequest wraps submission parse/validation failures (HTTP 400).
	ErrBadRequest = errors.New("serve: bad request")
)

// Config parameterizes a Service. Zero values take the documented
// defaults.
type Config struct {
	// Workers is the executor pool size (default GOMAXPROCS). The pool
	// is fixed: admission control, not spawning, absorbs load.
	Workers int
	// Shards is the number of independently locked queue shards tenants
	// hash onto (default min(Workers, 16)). Each worker has an affinity
	// shard and steals from the others when its own is empty.
	Shards int
	// QueueCap bounds the number of queued jobs across all tenants;
	// submissions beyond it fail with ErrQueueFull (default 256).
	QueueCap int
	// Heartbeat is the shared promotion threshold ♥ applied to every
	// job (default 100 instructions). A submission may set its own
	// smaller-grained value, but the default keeps the whole pool under
	// one interrupt policy, the paper's single-♥ regime.
	Heartbeat int64
	// SignalPeriod optionally layers OS-signal rollforward delivery on
	// every job (default 0 = off).
	SignalPeriod int64
	// FuelCap is the hard per-job budget ceiling in machine steps
	// (default 20M): no quote, however large the symbolic estimate, may
	// exceed it.
	FuelCap int64
	// MinBudget is the budget floor (default 10k steps), so tiny
	// estimates still leave room for estimator slack.
	MinBudget int64
	// TripAssume is the trip count assumed for every unknown loop
	// variable when the symbolic work bound is evaluated into a quote
	// (default 1024).
	TripAssume int64
	// QuoteMargin scales the evaluated estimate into the granted budget
	// (default 4).
	QuoteMargin int64
	// DefaultTimeout is the per-job wall-clock deadline when the
	// submission names none (default 10s); MaxTimeout caps requested
	// deadlines (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Quantum is the DRR credit per scheduling visit, in budget steps
	// (default 100k).
	Quantum int64
	// ResultCacheCap bounds the content-addressed result store; the
	// least-recently-used entries are evicted past it (default 4096).
	ResultCacheCap int
	// JobRetention caps how many terminal job records the service keeps
	// (default 4096); JobTTL additionally expires terminal records by
	// age (default 15m). A GET on an evicted id is a 404. Queued and
	// running jobs are never evicted.
	JobRetention int
	JobTTL       time.Duration
	// DisableOptimizer skips the certified analysis-directed optimizer
	// that normally runs over every admitted program. By default the
	// service executes (and quotes) the optimized form: the optimizer's
	// translation-validation certifier guarantees the result registers
	// and every static bound are preserved or improved, so the only
	// observable differences are smaller quotes and fewer steps.
	DisableOptimizer bool
	// Backend selects the execution engine for admitted jobs: the
	// interpreter (default) or the closure-threaded compiled backend.
	// Compiled programs are cached per admission key beside the analysis
	// cache, so steady-state submissions pay no lowering cost. The two
	// backends are observably identical (same results, faults, stats);
	// the compiled one just dispatches pre-lowered closures instead of
	// re-decoding instructions every step.
	Backend machine.Backend
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards <= 0 {
		c.Shards = c.Workers
		if c.Shards > 16 {
			c.Shards = 16
		}
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 100
	}
	if c.FuelCap <= 0 {
		c.FuelCap = 20_000_000
	}
	if c.MinBudget <= 0 {
		c.MinBudget = 10_000
	}
	if c.MinBudget > c.FuelCap {
		c.MinBudget = c.FuelCap
	}
	if c.TripAssume <= 0 {
		c.TripAssume = 1024
	}
	if c.QuoteMargin <= 0 {
		c.QuoteMargin = 4
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.Quantum <= 0 {
		c.Quantum = 100_000
	}
	if c.ResultCacheCap <= 0 {
		c.ResultCacheCap = 4096
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 4096
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	return c
}

// SubmitRequest is one job submission.
type SubmitRequest struct {
	// Tenant is the fairness key; empty maps to "anonymous".
	Tenant string `json:"tenant"`
	// Lang is "tpal", "minipar", or "" (auto-detect).
	Lang string `json:"lang"`
	// Source is the program text.
	Source string `json:"source"`
	// Args are the entry register values.
	Args map[string]int64 `json:"args"`
	// Entry optionally names extra registers to assume initialized at
	// entry (beyond the keys of Args and, for minipar, the params).
	Entry []string `json:"entry"`
	// Heartbeat overrides the service ♥ for this job when positive.
	Heartbeat int64 `json:"heartbeat"`
	// Fuel lowers the granted budget below the quote when positive (it
	// can never raise it past the service cap).
	Fuel int64 `json:"fuel"`
	// TimeoutMS overrides the default deadline, capped by MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms"`
	// Trace requests per-job event tracing: the run executes with a
	// ring-buffer tracer attached and the job record carries the drained
	// trace summary (GET /v1/jobs/{id} returns it under "trace"). The
	// HTTP layer also accepts it as the ?trace=1 query parameter on
	// POST /v1/jobs. Traced submissions bypass the result cache and the
	// singleflight registry so the trace always reflects a real
	// execution; their live events also stream over the job's SSE feed.
	Trace bool `json:"trace"`
	// AutoParallelize runs the autopar dependence pass over the
	// submission before admission: sequential loops and independent
	// statement pairs in the (minipar-only) source are rewritten to
	// parfor/par where the rewrite certifies race-free, and the job
	// record carries the per-site verdict table and predicted speedup
	// (GET /v1/jobs/{id} returns them under "autopar"). The admission
	// gate then analyzes the transformed program.
	AutoParallelize bool `json:"auto_parallelize"`
}

// Service is the job-execution subsystem.
type Service struct {
	cfg Config

	// mu guards the job table, metrics, caches, and all per-job mutable
	// state. It is deliberately NOT on the queue hot path: shards carry
	// their own locks (lock order: mu may nest a shard lock; never the
	// reverse), and idle workers park on idleCond, not on mu.
	mu sync.Mutex

	shards  []*shard
	qdepth  atomic.Int64 // jobs physically sitting in shard queues
	queuedN int          // admission-visible queue depth, guarded by mu

	idleMu   sync.Mutex
	idleCond *sync.Cond  // workers park here when every shard is dry
	drain    atomic.Bool // mirrors draining for lock-free worker exits

	batch batcher

	jobs     map[string]*Job
	retired  []*Job // terminal jobs in finish order, pruned by cap and TTL
	inflight map[string]*Job
	// primaries is the singleflight registry: cacheKey → the in-flight
	// job concurrent identical submissions coalesce onto. Entries are
	// removed when the primary reaches a terminal state.
	primaries map[string]*Job
	seq       int64
	draining  bool

	analysisCache map[string]*admission
	results       *resultStore
	compiledCache map[string]*compile.Program
	metrics       *Metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	started    time.Time

	// hookRunning, when set by tests, observes each job as its
	// execution begins.
	hookRunning func(*Job)
}

// setRunningHook installs the test observation hook under the lock.
func (s *Service) setRunningHook(f func(*Job)) {
	s.mu.Lock()
	s.hookRunning = f
	s.mu.Unlock()
}

// New starts a service with Workers executor goroutines.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:           cfg,
		jobs:          make(map[string]*Job),
		inflight:      make(map[string]*Job),
		primaries:     make(map[string]*Job),
		analysisCache: make(map[string]*admission),
		results:       newResultStore(cfg.ResultCacheCap),
		compiledCache: make(map[string]*compile.Program),
		metrics:       newMetrics(),
		started:       time.Now(),
	}
	s.idleCond = sync.NewCond(&s.idleMu)
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{q: newDRRQueue(cfg.Quantum)}
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i % cfg.Shards)
	}
	return s
}

// Job returns the job record by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobView returns the wire snapshot of a job. Terminal records past
// the retention cap or TTL have been evicted and report not-found.
func (s *Service) JobView(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked(time.Now())
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Submit admits one job. The returned Job is terminal immediately for
// rejections (StatusRejected, with the gate's diagnostics attached) and
// cache hits (StatusDone, Cached); otherwise it is queued — possibly as
// a singleflight follower (Coalesced) of an identical in-flight job.
// ErrQueueFull and ErrDraining report backpressure without creating a
// job record; parse failures wrap ErrBadRequest.
func (s *Service) Submit(req SubmitRequest) (*Job, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.metrics.Submitted++
	s.mu.Unlock()

	w, err := s.prepare(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	s.enqueueBatch(w)
	return w.j, w.err
}

// prepare parses one submission into a batch work item: program, entry
// register set, fingerprint, and admission key. It takes no locks.
func (s *Service) prepare(req SubmitRequest) (*submitWork, error) {
	prog, params, autoRep, err := s.loadSubmission(req)
	if err != nil {
		return nil, err
	}

	// Entry registers: declared params, argument keys, and any extras.
	entrySet := make(map[tpal.Reg]bool)
	for _, r := range params {
		entrySet[r] = true
	}
	for k := range req.Args {
		entrySet[tpal.Reg(k)] = true
	}
	for _, k := range req.Entry {
		entrySet[tpal.Reg(k)] = true
	}
	entry := make([]tpal.Reg, 0, len(entrySet))
	for r := range entrySet {
		entry = append(entry, r)
	}

	fp := tpal.Fingerprint(prog)
	return &submitWork{
		req:     req,
		prog:    prog,
		entry:   entry,
		autoRep: autoRep,
		fp:      fp,
		key:     admitKey(fp, entry),
		done:    make(chan struct{}),
	}, nil
}

// worker is one executor goroutine: it serves its affinity shard,
// steals from the others when that runs dry, and parks on idleCond
// when every shard is empty.
func (s *Service) worker(affinity int) {
	defer s.wg.Done()
	for {
		j, stolen := s.take(affinity)
		if j == nil {
			s.idleMu.Lock()
			for s.qdepth.Load() == 0 && !s.drain.Load() {
				s.idleCond.Wait()
			}
			s.idleMu.Unlock()
			if s.drain.Load() && s.qdepth.Load() == 0 {
				return
			}
			continue
		}

		s.mu.Lock()
		j.Status = StatusRunning
		j.Started = time.Now()
		s.queuedN--
		s.inflight[j.ID] = j
		s.metrics.queueWait.add(float64(j.Started.Sub(j.Submitted)) / float64(time.Millisecond))
		if stolen {
			s.metrics.Steals++
		}
		s.publishLocked(j, statusEvent(j))
		hook := s.hookRunning
		s.mu.Unlock()

		if hook != nil {
			hook(j)
		}
		s.execute(j)
	}
}

// Trace streaming plumbing: the tracer's sink does a non-blocking send
// into a buffered channel; pumpTrace batches what arrives into SSE
// trace frames so a hot run produces bounded frame rates.
const (
	traceSinkBuffer = 1024
	traceBatchMax   = 64
)

// execute runs one admitted job on the abstract machine under the
// job's fuel budget and deadline, then classifies the outcome.
func (s *Service) execute(j *Job) {
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	s.mu.Lock()
	j.cancel = cancel
	s.metrics.Executions++
	s.mu.Unlock()
	defer cancel()

	var tracer *trace.Tracer
	var sink chan trace.Event
	var pumpDone chan struct{}
	var sinkDropped atomic.Int64
	if j.traced {
		tracer = trace.New(1, jobTraceCapacity)
		sink = make(chan trace.Event, traceSinkBuffer)
		tracer.SetSink(func(e trace.Event) {
			select {
			case sink <- e:
			default: // live feed saturated; the ring stays exact
				sinkDropped.Add(1)
			}
		})
		pumpDone = make(chan struct{})
		go func() {
			defer close(pumpDone)
			s.pumpTrace(j, sink, &sinkDropped)
		}()
	}

	// Admission already ran the full pipeline (and cached it), so the
	// machine's own load-time verification pass is skipped.
	runCfg := machine.Config{
		Heartbeat:    j.heartbeat,
		SignalPeriod: j.signal,
		Fuel:         j.Quote.Budget,
		MaxSteps:     1 << 60, // the fuel budget, not the runaway default, bounds the run
		Context:      ctx,
		Regs:         j.regs,
		SkipVerify:   true,
		Tracer:       tracer,
	}
	var res machine.Result
	var err error
	if j.compiled != nil {
		res, err = j.compiled.Run(runCfg)
	} else {
		res, err = machine.Run(j.prog, runCfg)
	}
	if tracer != nil {
		// Run has returned, so no goroutine records into the tracer
		// anymore; closing the sink flushes and stops the pump.
		close(sink)
		<-pumpDone
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.Finished = time.Now()
	execNanos := j.Finished.Sub(j.Started).Nanoseconds()
	s.metrics.exec.add(float64(execNanos) / float64(time.Millisecond))
	s.metrics.ExecNanos += execNanos
	if j.compiled != nil {
		s.metrics.CompiledRuns++
	}
	delete(s.inflight, j.ID)
	j.cancel = nil
	if tracer != nil {
		j.Trace = jobTraceOf(tracer.Drain())
		s.metrics.TracedJobs++
		for k, n := range j.Trace.Counts {
			s.metrics.traceCounts[k] += n
		}
	}

	switch {
	case err == nil:
		j.Status = StatusDone
		j.Result = renderRegs(res.Regs)
		j.Stats = statsOf(res.Stats)
		s.metrics.Promotions += res.Stats.HandlerRuns
		s.results.put(j.cacheKey, &cachedResult{result: j.Result, stats: j.Stats})
		s.metrics.Completed++
	case errors.Is(err, machine.ErrFuel), errors.Is(err, machine.ErrMaxSteps):
		j.Status = StatusBudget
		j.Error = fmt.Sprintf("budget of %d steps exceeded", j.Quote.Budget)
		s.metrics.BudgetExceeded++
	case errors.Is(err, machine.ErrInterrupted):
		if errors.Is(err, context.DeadlineExceeded) {
			j.Status = StatusTimeout
			j.Error = fmt.Sprintf("deadline of %s exceeded", j.timeout)
			s.metrics.Timeouts++
		} else {
			j.Status = StatusCanceled
			j.Error = "canceled during drain"
			s.metrics.Canceled++
		}
	default:
		j.Status = StatusFailed
		j.Error = err.Error()
		s.metrics.Failed++
	}
	s.finishLocked(j)
}

// pumpTrace forwards live tracer events to the job's event stream in
// batches. It exits when the sink channel closes (after Run returns).
func (s *Service) pumpTrace(j *Job, sink <-chan trace.Event, dropped *atomic.Int64) {
	for ev := range sink {
		batch := make([]string, 1, traceBatchMax)
		batch[0] = ev.String()
	fill:
		for len(batch) < traceBatchMax {
			select {
			case ev, ok := <-sink:
				if !ok {
					break fill
				}
				batch = append(batch, ev.String())
			default:
				break fill
			}
		}
		frame := jobEvent{Kind: eventKindTrace, Data: jobEventData{
			ID:      j.ID,
			Events:  batch,
			Dropped: dropped.Swap(0),
		}}
		s.mu.Lock()
		s.publishLocked(j, frame)
		s.mu.Unlock()
	}
}

// finishLocked settles a job that just reached a terminal state: it
// publishes the terminal event, releases the singleflight slot,
// propagates the outcome to any coalesced followers, closes the done
// channel and every subscriber feed, and moves the record onto the
// bounded retention list. The caller holds the service mutex, has set
// Status/Finished and the outcome fields, and has counted the job's
// own outcome metric; finishLocked counts the followers'.
func (s *Service) finishLocked(j *Job) {
	s.publishLocked(j, statusEvent(j))
	if s.primaries[j.cacheKey] == j {
		delete(s.primaries, j.cacheKey)
	}
	for _, f := range j.followers {
		f.Status = j.Status
		f.Result = j.Result
		f.Stats = j.Stats
		f.Error = j.Error
		f.Finished = j.Finished
		if f.Finished.IsZero() {
			f.Finished = time.Now()
		}
		s.countOutcomeLocked(f.Status)
		s.finishLocked(f)
	}
	j.followers = nil
	close(j.done)
	for _, c := range j.subs {
		close(c)
	}
	j.subs = nil
	s.retireLocked(j)
}

// countOutcomeLocked bumps the outcome counter for one terminal
// status; finishLocked uses it for singleflight followers, whose
// outcomes are inherited rather than executed.
func (s *Service) countOutcomeLocked(st Status) {
	switch st {
	case StatusDone:
		s.metrics.Completed++
	case StatusFailed:
		s.metrics.Failed++
	case StatusBudget:
		s.metrics.BudgetExceeded++
	case StatusTimeout:
		s.metrics.Timeouts++
	case StatusCanceled:
		s.metrics.Canceled++
	}
}

// retireLocked appends a terminal job to the retention list and prunes.
func (s *Service) retireLocked(j *Job) {
	s.retired = append(s.retired, j)
	s.pruneLocked(time.Now())
}

// pruneLocked evicts terminal job records past the retention cap or
// older than the TTL. The retired list is in finish order, so evicting
// from the head removes the oldest records first. Queued and running
// jobs are not on the list and therefore never evicted.
func (s *Service) pruneLocked(now time.Time) {
	for len(s.retired) > 0 {
		old := s.retired[0]
		overCap := len(s.retired) > s.cfg.JobRetention
		expired := now.Sub(old.Finished) > s.cfg.JobTTL
		if !overCap && !expired {
			break
		}
		s.retired[0] = nil
		s.retired = s.retired[1:]
		if s.jobs[old.ID] == old {
			delete(s.jobs, old.ID)
			s.metrics.JobsEvicted++
		}
	}
	// Re-home the slice when the window has slid far from its backing
	// array, so the evicted prefix can be collected.
	if cap(s.retired) > 64 && len(s.retired) < cap(s.retired)/4 {
		s.retired = append(make([]*Job, 0, len(s.retired)), s.retired...)
	}
}

func renderRegs(regs machine.RegFile) map[string]string {
	out := make(map[string]string, len(regs))
	for r, v := range regs {
		out[string(r)] = v.String()
	}
	return out
}

// Drain gracefully shuts the service down: admission stops (new
// submissions fail with ErrDraining), every queued-but-unstarted job is
// canceled (along with its singleflight followers), and in-flight jobs
// run to completion. If ctx expires first, in-flight jobs are
// interrupted through their run contexts and the drain still completes.
// Drain is idempotent; it returns once every worker goroutine has
// exited.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.drain.Store(true)
	if !already {
		now := time.Now()
		var drained []*Job
		for _, sh := range s.shards {
			sh.mu.Lock()
			js := sh.q.drainAll()
			sh.mu.Unlock()
			s.qdepth.Add(-int64(len(js)))
			drained = append(drained, js...)
		}
		s.queuedN -= len(drained)
		for _, j := range drained {
			j.Status = StatusCanceled
			j.Error = "server draining"
			j.Finished = now
			s.metrics.Canceled++
			s.finishLocked(j)
		}
	}
	s.mu.Unlock()

	s.idleMu.Lock()
	s.idleCond.Broadcast()
	s.idleMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Forced drain: interrupt whatever is still running, then wait
		// for the workers to observe the cancellation.
		s.baseCancel()
		<-done
	}
	if !already {
		s.baseCancel()
	}
	return err
}

// Draining reports whether the service has stopped admitting.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
