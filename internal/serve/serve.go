// Package serve is the multi-tenant TPAL execution service: jobs —
// TPAL assembly or minipar programs plus entry arguments — are
// canonicalized and fingerprinted, pushed through the full static
// analysis pipeline as an admission gate, quoted a step budget derived
// from the symbolic work bound, queued under per-tenant deficit
// round-robin, and executed on a fixed pool of worker goroutines
// running the abstract machine under the service's shared heartbeat
// configuration with per-job fuel and deadlines. The HTTP surface lives
// in http.go; cmd/tpal-serve is the daemon.
//
// The subsystem exists because heartbeat scheduling is exactly the
// substrate a shared service needs: every admitted job is
// serial-by-default and only promotes parallelism at analysis-certified
// promotion points, so a fixed worker pool can run many mutually
// untrusted jobs without oversubscription, and the same analyses that
// prove a program safe also price it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"tpal/internal/tpal"
	"tpal/internal/tpal/machine"
	"tpal/internal/tpal/machine/compile"
	"tpal/internal/trace"
)

// jobTraceCapacity is the per-job ring size: 1<<14 events bounds a
// traced job's memory at ~650 KB while keeping whole small runs.
const jobTraceCapacity = 1 << 14

// Submission errors. The HTTP layer maps these to status codes; direct
// callers can errors.Is against them.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity
	// (HTTP 429).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining means the service has stopped admitting (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting jobs")
	// ErrBadRequest wraps submission parse/validation failures (HTTP 400).
	ErrBadRequest = errors.New("serve: bad request")
)

// Config parameterizes a Service. Zero values take the documented
// defaults.
type Config struct {
	// Workers is the executor pool size (default GOMAXPROCS). The pool
	// is fixed: admission control, not spawning, absorbs load.
	Workers int
	// QueueCap bounds the number of queued jobs across all tenants;
	// submissions beyond it fail with ErrQueueFull (default 256).
	QueueCap int
	// Heartbeat is the shared promotion threshold ♥ applied to every
	// job (default 100 instructions). A submission may set its own
	// smaller-grained value, but the default keeps the whole pool under
	// one interrupt policy, the paper's single-♥ regime.
	Heartbeat int64
	// SignalPeriod optionally layers OS-signal rollforward delivery on
	// every job (default 0 = off).
	SignalPeriod int64
	// FuelCap is the hard per-job budget ceiling in machine steps
	// (default 20M): no quote, however large the symbolic estimate, may
	// exceed it.
	FuelCap int64
	// MinBudget is the budget floor (default 10k steps), so tiny
	// estimates still leave room for estimator slack.
	MinBudget int64
	// TripAssume is the trip count assumed for every unknown loop
	// variable when the symbolic work bound is evaluated into a quote
	// (default 1024).
	TripAssume int64
	// QuoteMargin scales the evaluated estimate into the granted budget
	// (default 4).
	QuoteMargin int64
	// DefaultTimeout is the per-job wall-clock deadline when the
	// submission names none (default 10s); MaxTimeout caps requested
	// deadlines (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Quantum is the DRR credit per scheduling visit, in budget steps
	// (default 100k).
	Quantum int64
	// DisableOptimizer skips the certified analysis-directed optimizer
	// that normally runs over every admitted program. By default the
	// service executes (and quotes) the optimized form: the optimizer's
	// translation-validation certifier guarantees the result registers
	// and every static bound are preserved or improved, so the only
	// observable differences are smaller quotes and fewer steps.
	DisableOptimizer bool
	// Backend selects the execution engine for admitted jobs: the
	// interpreter (default) or the closure-threaded compiled backend.
	// Compiled programs are cached per admission key beside the analysis
	// cache, so steady-state submissions pay no lowering cost. The two
	// backends are observably identical (same results, faults, stats);
	// the compiled one just dispatches pre-lowered closures instead of
	// re-decoding instructions every step.
	Backend machine.Backend
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 100
	}
	if c.FuelCap <= 0 {
		c.FuelCap = 20_000_000
	}
	if c.MinBudget <= 0 {
		c.MinBudget = 10_000
	}
	if c.MinBudget > c.FuelCap {
		c.MinBudget = c.FuelCap
	}
	if c.TripAssume <= 0 {
		c.TripAssume = 1024
	}
	if c.QuoteMargin <= 0 {
		c.QuoteMargin = 4
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.Quantum <= 0 {
		c.Quantum = 100_000
	}
	return c
}

// SubmitRequest is one job submission.
type SubmitRequest struct {
	// Tenant is the fairness key; empty maps to "anonymous".
	Tenant string `json:"tenant"`
	// Lang is "tpal", "minipar", or "" (auto-detect).
	Lang string `json:"lang"`
	// Source is the program text.
	Source string `json:"source"`
	// Args are the entry register values.
	Args map[string]int64 `json:"args"`
	// Entry optionally names extra registers to assume initialized at
	// entry (beyond the keys of Args and, for minipar, the params).
	Entry []string `json:"entry"`
	// Heartbeat overrides the service ♥ for this job when positive.
	Heartbeat int64 `json:"heartbeat"`
	// Fuel lowers the granted budget below the quote when positive (it
	// can never raise it past the service cap).
	Fuel int64 `json:"fuel"`
	// TimeoutMS overrides the default deadline, capped by MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms"`
	// Trace requests per-job event tracing: the run executes with a
	// ring-buffer tracer attached and the job record carries the drained
	// trace summary (GET /v1/jobs/{id} returns it under "trace"). The
	// HTTP layer also accepts it as the ?trace=1 query parameter on
	// POST /v1/jobs. Traced submissions bypass the result cache so the
	// trace always reflects a real execution.
	Trace bool `json:"trace"`
	// AutoParallelize runs the autopar dependence pass over the
	// submission before admission: sequential loops and independent
	// statement pairs in the (minipar-only) source are rewritten to
	// parfor/par where the rewrite certifies race-free, and the job
	// record carries the per-site verdict table and predicted speedup
	// (GET /v1/jobs/{id} returns them under "autopar"). The admission
	// gate then analyzes the transformed program.
	AutoParallelize bool `json:"auto_parallelize"`
}

// cachedResult is a completed run memoized by resultKey.
type cachedResult struct {
	result map[string]string
	stats  *JobStats
}

// Service is the job-execution subsystem.
type Service struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond

	queue    *drrQueue
	jobs     map[string]*Job
	inflight map[string]*Job
	seq      int64
	draining bool

	analysisCache map[string]*admission
	resultCache   map[string]*cachedResult
	compiledCache map[string]*compile.Program
	metrics       *Metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	started    time.Time

	// hookRunning, when set by tests, observes each job as its
	// execution begins.
	hookRunning func(*Job)
}

// setRunningHook installs the test observation hook under the lock.
func (s *Service) setRunningHook(f func(*Job)) {
	s.mu.Lock()
	s.hookRunning = f
	s.mu.Unlock()
}

// New starts a service with Workers executor goroutines.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:           cfg,
		queue:         newDRRQueue(cfg.Quantum),
		jobs:          make(map[string]*Job),
		inflight:      make(map[string]*Job),
		analysisCache: make(map[string]*admission),
		resultCache:   make(map[string]*cachedResult),
		compiledCache: make(map[string]*compile.Program),
		metrics:       newMetrics(),
		started:       time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Job returns the job record by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobView returns the wire snapshot of a job.
func (s *Service) JobView(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Submit admits one job. The returned Job is terminal immediately for
// rejections (StatusRejected, with the gate's diagnostics attached) and
// cache hits (StatusDone, Cached); otherwise it is queued. ErrQueueFull
// and ErrDraining report backpressure without creating a job record;
// parse failures wrap ErrBadRequest.
func (s *Service) Submit(req SubmitRequest) (*Job, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.metrics.Submitted++
	s.mu.Unlock()

	prog, params, autoRep, err := s.loadSubmission(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}

	// Entry registers: declared params, argument keys, and any extras.
	entrySet := make(map[tpal.Reg]bool)
	for _, r := range params {
		entrySet[r] = true
	}
	for k := range req.Args {
		entrySet[tpal.Reg(k)] = true
	}
	for _, k := range req.Entry {
		entrySet[tpal.Reg(k)] = true
	}
	entry := make([]tpal.Reg, 0, len(entrySet))
	for r := range entrySet {
		entry = append(entry, r)
	}

	adm := s.admit(prog, entry)
	if adm.optimized != nil {
		prog = adm.optimized
	}
	var compiled *compile.Program
	if !adm.rejected && s.cfg.Backend == machine.BackendCompiled {
		compiled = s.compiledFor(admitKey(adm.fingerprint, entry), prog, entry)
	}

	tenant := req.Tenant
	if tenant == "" {
		tenant = "anonymous"
	}
	heartbeat := s.cfg.Heartbeat
	if req.Heartbeat > 0 {
		heartbeat = req.Heartbeat
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	regs := make(machine.RegFile, len(req.Args))
	for k, v := range req.Args {
		regs[tpal.Reg(k)] = machine.IntV(v)
	}

	now := time.Now()
	j := &Job{
		Tenant:      tenant,
		Fingerprint: adm.fingerprint,
		Quote:       adm.quote,
		Autopar:     autoRep,
		Submitted:   now,
		prog:        prog,
		compiled:    compiled,
		regs:        regs,
		heartbeat:   heartbeat,
		signal:      s.cfg.SignalPeriod,
		timeout:     timeout,
		traced:      req.Trace,
		done:        make(chan struct{}),
	}
	if req.Fuel > 0 && req.Fuel < j.Quote.Budget {
		j.Quote.Budget = req.Fuel
	}
	j.cost = j.Quote.Budget
	if j.cost <= 0 {
		j.cost = 1
	}
	j.cacheKey = resultKey(adm.fingerprint, req.Args, heartbeat, s.cfg.SignalPeriod)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.seq++
	j.ID = fmt.Sprintf("j%06d", s.seq)

	if adm.rejected {
		j.Status = StatusRejected
		j.Diags = adm.diags
		j.Error = adm.reason
		j.Finished = now
		close(j.done)
		s.jobs[j.ID] = j
		s.metrics.Rejected++
		return j, nil
	}

	if cached, ok := s.resultCache[j.cacheKey]; ok && !j.traced {
		j.Status = StatusDone
		j.Result = cached.result
		j.Stats = cached.stats
		j.Cached = true
		j.Started = now
		j.Finished = now
		close(j.done)
		s.jobs[j.ID] = j
		s.metrics.ResultHits++
		s.metrics.Admitted++
		s.metrics.Completed++
		s.metrics.noteAutopar(j.Autopar)
		return j, nil
	}

	if s.queue.len() >= s.cfg.QueueCap {
		s.metrics.Throttled++
		return nil, ErrQueueFull
	}

	j.Status = StatusQueued
	s.jobs[j.ID] = j
	s.queue.push(j)
	s.metrics.Admitted++
	s.metrics.noteAutopar(j.Autopar)
	s.cond.Signal()
	return j, nil
}

// worker is one executor goroutine: it pulls jobs off the fair queue
// and runs them until drain empties the queue.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.len() == 0 && !s.draining {
			s.cond.Wait()
		}
		j := s.queue.pop()
		if j == nil { // draining and nothing queued
			s.mu.Unlock()
			return
		}
		j.Status = StatusRunning
		j.Started = time.Now()
		s.inflight[j.ID] = j
		s.metrics.queueWait.add(float64(j.Started.Sub(j.Submitted)) / float64(time.Millisecond))
		hook := s.hookRunning
		s.mu.Unlock()

		if hook != nil {
			hook(j)
		}
		s.execute(j)
	}
}

// execute runs one admitted job on the abstract machine under the
// job's fuel budget and deadline, then classifies the outcome.
func (s *Service) execute(j *Job) {
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	s.mu.Lock()
	j.cancel = cancel
	s.mu.Unlock()
	defer cancel()

	var tracer *trace.Tracer
	if j.traced {
		tracer = trace.New(1, jobTraceCapacity)
	}

	// Admission already ran the full pipeline (and cached it), so the
	// machine's own load-time verification pass is skipped.
	runCfg := machine.Config{
		Heartbeat:    j.heartbeat,
		SignalPeriod: j.signal,
		Fuel:         j.Quote.Budget,
		MaxSteps:     1 << 60, // the fuel budget, not the runaway default, bounds the run
		Context:      ctx,
		Regs:         j.regs,
		SkipVerify:   true,
		Tracer:       tracer,
	}
	var res machine.Result
	var err error
	if j.compiled != nil {
		res, err = j.compiled.Run(runCfg)
	} else {
		res, err = machine.Run(j.prog, runCfg)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.Finished = time.Now()
	execNanos := j.Finished.Sub(j.Started).Nanoseconds()
	s.metrics.exec.add(float64(execNanos) / float64(time.Millisecond))
	s.metrics.ExecNanos += execNanos
	if j.compiled != nil {
		s.metrics.CompiledRuns++
	}
	delete(s.inflight, j.ID)
	j.cancel = nil
	if tracer != nil {
		j.Trace = jobTraceOf(tracer.Drain())
		s.metrics.TracedJobs++
		for k, n := range j.Trace.Counts {
			s.metrics.traceCounts[k] += n
		}
	}

	switch {
	case err == nil:
		j.Status = StatusDone
		j.Result = renderRegs(res.Regs)
		j.Stats = statsOf(res.Stats)
		s.metrics.Promotions += res.Stats.HandlerRuns
		s.resultCache[j.cacheKey] = &cachedResult{result: j.Result, stats: j.Stats}
		s.metrics.Completed++
	case errors.Is(err, machine.ErrFuel), errors.Is(err, machine.ErrMaxSteps):
		j.Status = StatusBudget
		j.Error = fmt.Sprintf("budget of %d steps exceeded", j.Quote.Budget)
		s.metrics.BudgetExceeded++
	case errors.Is(err, machine.ErrInterrupted):
		if errors.Is(err, context.DeadlineExceeded) {
			j.Status = StatusTimeout
			j.Error = fmt.Sprintf("deadline of %s exceeded", j.timeout)
			s.metrics.Timeouts++
		} else {
			j.Status = StatusCanceled
			j.Error = "canceled during drain"
			s.metrics.Canceled++
		}
	default:
		j.Status = StatusFailed
		j.Error = err.Error()
		s.metrics.Failed++
	}
	close(j.done)
}

func renderRegs(regs machine.RegFile) map[string]string {
	out := make(map[string]string, len(regs))
	for r, v := range regs {
		out[string(r)] = v.String()
	}
	return out
}

// Drain gracefully shuts the service down: admission stops (new
// submissions fail with ErrDraining), every queued-but-unstarted job is
// canceled, and in-flight jobs run to completion. If ctx expires first,
// in-flight jobs are interrupted through their run contexts and the
// drain still completes. Drain is idempotent; it returns once every
// worker goroutine has exited.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		now := time.Now()
		for _, j := range s.queue.drainAll() {
			j.Status = StatusCanceled
			j.Error = "server draining"
			j.Finished = now
			s.metrics.Canceled++
			close(j.done)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Forced drain: interrupt whatever is still running, then wait
		// for the workers to observe the cancellation.
		s.baseCancel()
		<-done
	}
	if !already {
		s.baseCancel()
	}
	return err
}

// Draining reports whether the service has stopped admitting.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
