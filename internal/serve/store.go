package serve

import "container/list"

// cachedResult is a completed run memoized by resultKey.
type cachedResult struct {
	result map[string]string
	stats  *JobStats
}

// resultStore is the content-addressed result cache: completed runs
// keyed by fingerprint × args × heartbeat (resultKey), bounded by an
// LRU eviction policy so a long-lived service holding millions of
// distinct submissions cannot grow without bound. Get promotes; Put
// inserts (or refreshes) and evicts the least-recently-used entries
// past the cap. Not goroutine-safe; the service mutex guards it.
//
// The store is one half of the dedup story: it collapses *sequential*
// duplicates (submit after the first run finished). Concurrent
// duplicates are collapsed by the singleflight registry
// (Service.primaries), which attaches them to the in-flight execution
// before any result exists to cache.
type resultStore struct {
	cap       int
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	evictions int64
}

type storeEntry struct {
	key string
	val *cachedResult
}

func newResultStore(capacity int) *resultStore {
	if capacity < 1 {
		capacity = 1
	}
	return &resultStore{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

func (rs *resultStore) len() int { return len(rs.entries) }

// get returns the cached result for key and marks it recently used,
// or nil on a miss.
func (rs *resultStore) get(key string) *cachedResult {
	el, ok := rs.entries[key]
	if !ok {
		return nil
	}
	rs.order.MoveToFront(el)
	return el.Value.(*storeEntry).val
}

// put inserts (or refreshes) key and evicts from the cold end past
// the cap.
func (rs *resultStore) put(key string, val *cachedResult) {
	if el, ok := rs.entries[key]; ok {
		el.Value.(*storeEntry).val = val
		rs.order.MoveToFront(el)
		return
	}
	rs.entries[key] = rs.order.PushFront(&storeEntry{key: key, val: val})
	for len(rs.entries) > rs.cap {
		cold := rs.order.Back()
		if cold == nil {
			break
		}
		rs.order.Remove(cold)
		delete(rs.entries, cold.Value.(*storeEntry).key)
		rs.evictions++
	}
}
