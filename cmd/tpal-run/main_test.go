package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runTool drives the tool through its testable seam and returns the
// exit code plus captured stdout and stderr.
func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// writeProgram drops TPAL source into a temp file and returns its path.
func writeProgram(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// spinSrc loops n down to zero: a long serial run whose length the
// tests control through -reg n.
const spinSrc = `
program spin entry main

block main [.] {
  jump loop
}

block loop [.] {
  done := n <= 0
  if-jump done, exit
  n := n - 1
  jump loop
}

block exit [.] {
  halt
}
`

// faultSrc executes a join on an integer, a definite machine fault the
// verifier also condemns statically.
const faultSrc = `
program fault entry main

block main [.] {
  jr := 7
  join jr
}
`

func TestExitOK(t *testing.T) {
	path := writeProgram(t, "spin.tpal", spinSrc)
	code, out, errOut := runTool(t, "-reg", "n=10", "-out", "n", path)
	if code != exitOK {
		t.Fatalf("exit code = %d, want %d; stderr: %s", code, exitOK, errOut)
	}
	if !strings.Contains(out, "n = 0") {
		t.Errorf("stdout %q does not report n = 0", out)
	}
}

func TestExitFaultStatic(t *testing.T) {
	path := writeProgram(t, "fault.tpal", faultSrc)
	code, _, errOut := runTool(t, path)
	if code != exitFault {
		t.Fatalf("exit code = %d, want %d (verifier rejection is a fault); stderr: %s", code, exitFault, errOut)
	}
	if !strings.Contains(errOut, "rejected by static verifier") {
		t.Errorf("stderr %q does not mention the verifier", errOut)
	}
}

func TestExitFaultRace(t *testing.T) {
	code, _, errOut := runTool(t, "-race", "../../examples/races/racy.tpal")
	if code != exitFault {
		t.Fatalf("exit code = %d, want %d (the sanitizer's race is a fault); stderr: %s", code, exitFault, errOut)
	}
	if !strings.Contains(errOut, "determinacy race") {
		t.Errorf("stderr %q does not report a determinacy race", errOut)
	}
}

func TestExitBudgetFuel(t *testing.T) {
	path := writeProgram(t, "spin.tpal", spinSrc)
	code, _, errOut := runTool(t, "-reg", "n=1000000", "-fuel", "500", path)
	if code != exitBudget {
		t.Fatalf("exit code = %d, want %d; stderr: %s", code, exitBudget, errOut)
	}
	if !strings.Contains(errOut, "fuel budget exceeded") {
		t.Errorf("stderr %q does not report the fuel budget", errOut)
	}
}

func TestExitBudgetMaxSteps(t *testing.T) {
	path := writeProgram(t, "spin.tpal", spinSrc)
	code, _, errOut := runTool(t, "-reg", "n=1000000", "-max-steps", "500", path)
	if code != exitBudget {
		t.Fatalf("exit code = %d, want %d; stderr: %s", code, exitBudget, errOut)
	}
}

func TestExitTimeout(t *testing.T) {
	path := writeProgram(t, "spin.tpal", spinSrc)
	// 2^40 iterations cannot finish in 50ms; -max-steps lifts the
	// runaway guard so the deadline is what fires.
	code, _, errOut := runTool(t, "-reg", "n=1099511627776", "-max-steps", "1152921504606846976", "-timeout", "50ms", path)
	if code != exitTimeout {
		t.Fatalf("exit code = %d, want %d; stderr: %s", code, exitTimeout, errOut)
	}
	if !strings.Contains(errOut, "interrupted") {
		t.Errorf("stderr %q does not report the interruption", errOut)
	}
}

func TestExitUsage(t *testing.T) {
	if code, _, _ := runTool(t, "-schedule", "sideways", "-builtin", "prod"); code != exitUsage {
		t.Errorf("bad -schedule: exit code = %d, want %d", code, exitUsage)
	}
	if code, _, _ := runTool(t, "no-such-file.tpal"); code != exitUsage {
		t.Errorf("missing file: exit code = %d, want %d", code, exitUsage)
	}
	if code, _, _ := runTool(t, "-reg", "n=notanumber", "-builtin", "fib"); code != exitUsage {
		t.Errorf("bad -reg: exit code = %d, want %d", code, exitUsage)
	}
}

func TestBuiltinStillRuns(t *testing.T) {
	code, out, errOut := runTool(t, "-builtin", "prod", "-reg", "a=21,b=2", "-out", "c")
	if code != exitOK {
		t.Fatalf("exit code = %d, want %d; stderr: %s", code, exitOK, errOut)
	}
	if !strings.Contains(out, "c = 42") {
		t.Errorf("stdout %q does not report c = 42", out)
	}
}
