// Command tpal-run assembles and executes TPAL assembly programs on the
// abstract machine, and compiles and runs minipar programs (files ending
// in .mp) through the minipar→TPAL compiler.
//
// Usage:
//
//	tpal-run -builtin prod -reg a=1000,b=3 -heartbeat 50
//	tpal-run -builtin fib -reg n=20 -heartbeat 100 -schedule random -seed 7
//	tpal-run -reg x=5 -out result program.tpal
//	tpal-run -reg n=100 -out result -stats program.mp
//	tpal-run -dump program.mp          # print the compiled TPAL assembly
//	tpal-run -builtin pow -reg d=3,e=9 -stats
//	tpal-run -race -reg n=50 program.mp   # determinacy-race sanitizer on
//	tpal-run -O -builtin pow -reg d=3,e=9  # certified optimizer on
//	tpal-run -backend compiled -builtin fib -reg n=20  # closure-threaded backend
//	tpal-run -fuel 100000 program.tpal    # hard step budget
//	tpal-run -timeout 2s program.tpal     # wall-clock deadline
//	tpal-run -list-builtins
//
// Flags must precede the program file.
//
// With -heartbeat 0 the program runs its pure sequential elaboration;
// otherwise heartbeat interrupts fire every N instructions and promote
// latent parallelism at promotion-ready program points. -signal N
// instead delivers OS-style signals every N instructions with
// rollforward semantics.
//
// Exit status mirrors the tpal-serve job-state machine so scripts can
// tell outcomes apart:
//
//	0  the program halted
//	1  fault: a machine error, verifier rejection, or determinacy race
//	2  usage or load error (bad flags, unreadable or unparsable input)
//	3  budget exceeded (-fuel, or the -max-steps runaway guard)
//	4  timeout (-timeout wall-clock deadline passed)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"tpal/internal/minipar"
	"tpal/internal/tpal"
	"tpal/internal/tpal/asm"
	"tpal/internal/tpal/machine"
	_ "tpal/internal/tpal/machine/compile" // link the compiled backend
	"tpal/internal/tpal/opt"
	"tpal/internal/tpal/programs"
)

// Exit codes. The fault/budget/timeout split mirrors the job states of
// internal/serve, so a shell pipeline and the HTTP service agree on
// what happened to a program.
const (
	exitOK      = 0
	exitFault   = 1
	exitUsage   = 2
	exitBudget  = 3
	exitTimeout = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool behind a testable seam: it parses flags from
// args, writes results to stdout and failures to stderr, and returns
// the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tpal-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		builtin  = fs.String("builtin", "", "run a built-in program (prod, pow, fib)")
		regs     = fs.String("reg", "", "entry registers, e.g. a=1000,b=3")
		out      = fs.String("out", "", "result register to print (default: all registers)")
		hb       = fs.Int64("heartbeat", 100, "heartbeat threshold ♥ in instructions (0 = serial)")
		signal   = fs.Int64("signal", 0, "OS-signal period in instructions, rollforward semantics (0 = off)")
		tau      = fs.Int64("tau", 1, "fork-join cost τ for the cost semantics")
		schedule = fs.String("schedule", "lockstep", "task interleaving: lockstep, random, or depth-first")
		seed     = fs.Int64("seed", 0, "seed for the random schedule")
		maxSteps = fs.Int64("max-steps", 0, "step bound (0 = default 100M)")
		fuel     = fs.Int64("fuel", 0, "hard execution budget in machine steps; exceeding it exits 3 (0 = off)")
		timeout  = fs.Duration("timeout", 0, "wall-clock deadline for the run; exceeding it exits 4 (0 = off)")
		race     = fs.Bool("race", false, "enable the determinacy-race sanitizer (halts on the first racing access pair)")
		backend  = fs.String("backend", "interp", "execution backend: interp (switch dispatcher) or compiled (closure-threaded code)")
		optimize = fs.Bool("O", false, "run the certified analysis-directed optimizer before executing")
		stats    = fs.Bool("stats", false, "print execution statistics")
		list     = fs.Bool("list-builtins", false, "list built-in programs and exit")
		dump     = fs.Bool("dump", false, "print the assembled program instead of running it")
		trace    = fs.Bool("trace", false, "print an instruction-level execution trace (Appendix D style)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if *list {
		names := make([]string, 0, 3)
		for name := range programs.All() {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return exitOK
	}

	prog, err := loadProgram(*builtin, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "tpal-run:", err)
		return exitUsage
	}
	if *optimize {
		// The optimizer subsumes verification (it refuses programs the
		// verifier rejects), and its output is certified equivalent, so
		// both -dump and the machine run use the optimized form.
		res, err := opt.Optimize(prog, opt.Options{EntryRegs: entryRegNames(*regs)})
		if err != nil {
			fmt.Fprintln(stderr, "tpal-run:", err)
			return exitFault
		}
		prog = res.Program
	}
	if *dump {
		fmt.Fprint(stdout, prog.String())
		return exitOK
	}

	cfg := machine.Config{
		Heartbeat:    *hb,
		SignalPeriod: *signal,
		Tau:          *tau,
		MaxSteps:     *maxSteps,
		Fuel:         *fuel,
		Seed:         *seed,
		RaceDetect:   *race,
		Regs:         make(machine.RegFile),
	}
	be, err := machine.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintln(stderr, "tpal-run:", err)
		return exitUsage
	}
	cfg.Backend = be
	switch *schedule {
	case "lockstep":
		cfg.Schedule = machine.Lockstep
	case "random":
		cfg.Schedule = machine.RandomOrder
	case "depth-first":
		cfg.Schedule = machine.DepthFirst
	default:
		fmt.Fprintf(stderr, "tpal-run: unknown schedule %q\n", *schedule)
		return exitUsage
	}

	if *trace {
		cfg.Trace = machine.WriteTrace(stdout)
	}

	if *regs != "" {
		for _, pair := range strings.Split(*regs, ",") {
			name, val, ok := strings.Cut(pair, "=")
			if !ok {
				fmt.Fprintf(stderr, "tpal-run: bad register assignment %q (want name=int)\n", pair)
				return exitUsage
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				fmt.Fprintf(stderr, "tpal-run: bad register value %q: %v\n", pair, err)
				return exitUsage
			}
			cfg.Regs[tpal.Reg(name)] = machine.IntV(n)
		}
	}

	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Context = ctx
	}

	res, err := machine.RunBackend(prog, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "tpal-run:", err)
		switch {
		case errors.Is(err, machine.ErrFuel), errors.Is(err, machine.ErrMaxSteps):
			return exitBudget
		case errors.Is(err, machine.ErrInterrupted):
			return exitTimeout
		default:
			return exitFault
		}
	}

	if *out != "" {
		fmt.Fprintf(stdout, "%s = %s\n", *out, res.Regs.Get(tpal.Reg(*out)))
	} else {
		names := make([]string, 0, len(res.Regs))
		for r := range res.Regs {
			names = append(names, string(r))
		}
		sort.Strings(names)
		for _, r := range names {
			fmt.Fprintf(stdout, "%s = %s\n", r, res.Regs.Get(tpal.Reg(r)))
		}
	}
	if *stats {
		st := res.Stats
		fmt.Fprintf(stdout, "steps=%d work=%d span=%d parallelism=%.2f forks=%d joins=%d handlers=%d records=%d tasks=%d maxLive=%d\n",
			st.Steps, st.Work, st.Span,
			float64(st.Work)/float64(max64(st.Span, 1)),
			st.Forks, st.Joins, st.HandlerRuns, st.JoinRecords, st.TasksCreated, st.MaxLiveTasks)
	}
	return exitOK
}

func loadProgram(builtin string, args []string) (*tpal.Program, error) {
	switch {
	case builtin != "":
		p, ok := programs.All()[builtin]
		if !ok {
			return nil, fmt.Errorf("unknown built-in %q (try -list-builtins)", builtin)
		}
		return p, nil
	case len(args) == 1:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(args[0], ".mp") {
			mp, err := minipar.Parse(string(src))
			if err != nil {
				return nil, err
			}
			return minipar.Compile(mp)
		}
		return asm.Parse(string(src))
	case len(args) > 1:
		return nil, fmt.Errorf("flags must precede the program file (got extra arguments %v)", args[1:])
	default:
		return nil, errors.New("provide a .tpal or .mp file, or -builtin name")
	}
}

// entryRegNames extracts the register names of a -reg assignment list;
// the -dump -O path needs them before the register file is built.
func entryRegNames(spec string) []tpal.Reg {
	var out []tpal.Reg
	for _, pair := range strings.Split(spec, ",") {
		if name, _, ok := strings.Cut(pair, "="); ok {
			out = append(out, tpal.Reg(name))
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
