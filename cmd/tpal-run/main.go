// Command tpal-run assembles and executes TPAL assembly programs on the
// abstract machine, and compiles and runs minipar programs (files ending
// in .mp) through the minipar→TPAL compiler.
//
// Usage:
//
//	tpal-run -builtin prod -reg a=1000,b=3 -heartbeat 50
//	tpal-run -builtin fib -reg n=20 -heartbeat 100 -schedule random -seed 7
//	tpal-run -reg x=5 -out result program.tpal
//	tpal-run -reg n=100 -out result -stats program.mp
//	tpal-run -dump program.mp          # print the compiled TPAL assembly
//	tpal-run -builtin pow -reg d=3,e=9 -stats
//	tpal-run -race -reg n=50 program.mp   # determinacy-race sanitizer on
//	tpal-run -list-builtins
//
// Flags must precede the program file.
//
// With -heartbeat 0 the program runs its pure sequential elaboration;
// otherwise heartbeat interrupts fire every N instructions and promote
// latent parallelism at promotion-ready program points. -signal N
// instead delivers OS-style signals every N instructions with
// rollforward semantics.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"tpal/internal/minipar"
	"tpal/internal/tpal"
	"tpal/internal/tpal/asm"
	"tpal/internal/tpal/machine"
	"tpal/internal/tpal/programs"
)

func main() {
	var (
		builtin  = flag.String("builtin", "", "run a built-in program (prod, pow, fib)")
		regs     = flag.String("reg", "", "entry registers, e.g. a=1000,b=3")
		out      = flag.String("out", "", "result register to print (default: all registers)")
		hb       = flag.Int64("heartbeat", 100, "heartbeat threshold ♥ in instructions (0 = serial)")
		signal   = flag.Int64("signal", 0, "OS-signal period in instructions, rollforward semantics (0 = off)")
		tau      = flag.Int64("tau", 1, "fork-join cost τ for the cost semantics")
		schedule = flag.String("schedule", "lockstep", "task interleaving: lockstep, random, or depth-first")
		seed     = flag.Int64("seed", 0, "seed for the random schedule")
		maxSteps = flag.Int64("max-steps", 0, "step bound (0 = default 100M)")
		race     = flag.Bool("race", false, "enable the determinacy-race sanitizer (halts on the first racing access pair)")
		stats    = flag.Bool("stats", false, "print execution statistics")
		list     = flag.Bool("list-builtins", false, "list built-in programs and exit")
		dump     = flag.Bool("dump", false, "print the assembled program instead of running it")
		trace    = flag.Bool("trace", false, "print an instruction-level execution trace (Appendix D style)")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, 3)
		for name := range programs.All() {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	prog, err := loadProgram(*builtin, flag.Args())
	if err != nil {
		fatal(err)
	}
	if *dump {
		fmt.Print(prog.String())
		return
	}

	cfg := machine.Config{
		Heartbeat:    *hb,
		SignalPeriod: *signal,
		Tau:          *tau,
		MaxSteps:     *maxSteps,
		Seed:         *seed,
		RaceDetect:   *race,
		Regs:         make(machine.RegFile),
	}
	switch *schedule {
	case "lockstep":
		cfg.Schedule = machine.Lockstep
	case "random":
		cfg.Schedule = machine.RandomOrder
	case "depth-first":
		cfg.Schedule = machine.DepthFirst
	default:
		fatal(fmt.Errorf("unknown schedule %q", *schedule))
	}

	if *trace {
		cfg.Trace = machine.WriteTrace(os.Stdout)
	}

	if *regs != "" {
		for _, pair := range strings.Split(*regs, ",") {
			name, val, ok := strings.Cut(pair, "=")
			if !ok {
				fatal(fmt.Errorf("bad register assignment %q (want name=int)", pair))
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad register value %q: %v", pair, err))
			}
			cfg.Regs[tpal.Reg(name)] = machine.IntV(n)
		}
	}

	res, err := machine.Run(prog, cfg)
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		fmt.Printf("%s = %s\n", *out, res.Regs.Get(tpal.Reg(*out)))
	} else {
		names := make([]string, 0, len(res.Regs))
		for r := range res.Regs {
			names = append(names, string(r))
		}
		sort.Strings(names)
		for _, r := range names {
			fmt.Printf("%s = %s\n", r, res.Regs.Get(tpal.Reg(r)))
		}
	}
	if *stats {
		st := res.Stats
		fmt.Printf("steps=%d work=%d span=%d parallelism=%.2f forks=%d joins=%d handlers=%d records=%d tasks=%d maxLive=%d\n",
			st.Steps, st.Work, st.Span,
			float64(st.Work)/float64(max64(st.Span, 1)),
			st.Forks, st.Joins, st.HandlerRuns, st.JoinRecords, st.TasksCreated, st.MaxLiveTasks)
	}
}

func loadProgram(builtin string, args []string) (*tpal.Program, error) {
	switch {
	case builtin != "":
		p, ok := programs.All()[builtin]
		if !ok {
			return nil, fmt.Errorf("unknown built-in %q (try -list-builtins)", builtin)
		}
		return p, nil
	case len(args) == 1:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(args[0], ".mp") {
			mp, err := minipar.Parse(string(src))
			if err != nil {
				return nil, err
			}
			return minipar.Compile(mp)
		}
		return asm.Parse(string(src))
	case len(args) > 1:
		return nil, fmt.Errorf("flags must precede the program file (got extra arguments %v)", args[1:])
	default:
		return nil, fmt.Errorf("provide a .tpal or .mp file, or -builtin name")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpal-run:", err)
	os.Exit(1)
}
