package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runTool drives the tool through its testable seam and returns the
// exit code plus captured stdout and stderr.
func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestAutoExamplesGolden pins the -auto -v verdict tables for the
// before/after pairs under examples/autopar: the map loop and the
// reduction parallelize, the loop-carried dependence is blocked with
// its TP071 reason, and in every case the transformed source matches
// the checked-in .auto.mp twin byte for byte.
func TestAutoExamplesGolden(t *testing.T) {
	t.Chdir("../..")
	for _, name := range []string{"map", "reduce", "carried"} {
		t.Run(name, func(t *testing.T) {
			golden, err := os.ReadFile(filepath.Join("cmd", "minipar", "testdata", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			code, out, errOut := runTool(t, "-auto", "-v", "examples/autopar/"+name+".mp")
			if code != 0 {
				t.Fatalf("exit code = %d, stderr: %s", code, errOut)
			}
			if out != string(golden) {
				t.Errorf("-auto -v output diverged from %s.golden:\n--- got ---\n%s\n--- want ---\n%s", name, out, golden)
			}

			after, err := os.ReadFile("examples/autopar/" + name + ".auto.mp")
			if err != nil {
				t.Fatal(err)
			}
			code, src, errOut := runTool(t, "-auto", "-src", "examples/autopar/"+name+".mp")
			if code != 0 {
				t.Fatalf("-src exit code = %d, stderr: %s", code, errOut)
			}
			// -src appends the transformed source after the table and a
			// blank line.
			if !strings.HasSuffix(src, "\n"+string(after)) {
				t.Errorf("transformed source diverged from %s.auto.mp:\n--- got ---\n%s\n--- want ---\n%s", name, src, after)
			}
		})
	}
}

// TestAutoRunAgreement is the certification contract at the CLI: the
// auto-parallelized machine run (race detector on) must agree with the
// sequential interpretation, and on the reduction kernel the heartbeat
// must cause real promotions — the loop actually runs in parallel.
func TestAutoRunAgreement(t *testing.T) {
	t.Chdir("../..")
	code, out, errOut := runTool(t, "-auto", "-run", "400", "-heartbeat", "30", "examples/autopar/reduce.mp")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "results agree") {
		t.Errorf("missing agreement line in:\n%s", out)
	}
	want := "21253400" // sum of i*i for i in [0,400) = 399*400*799/6
	if !strings.Contains(out, "sequential result:    "+want) {
		t.Errorf("missing sequential result %s in:\n%s", want, out)
	}
	// The stats line is "machine stats: N steps, N forks, ..." — forks
	// must be nonzero for the run to have exercised the parallelism.
	if strings.Contains(out, " 0 forks") {
		t.Errorf("auto-parallelized run never forked:\n%s", out)
	}
}

// TestCompileAndInterpret covers the non-auto paths: plain compilation
// prints TPAL assembly, -run interprets sequentially.
func TestCompileAndInterpret(t *testing.T) {
	t.Chdir("../..")
	code, out, errOut := runTool(t, "examples/autopar/reduce.mp")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "program ") {
		t.Errorf("compile output is not TPAL assembly:\n%s", out)
	}
	code, out, _ = runTool(t, "-run", "10", "examples/autopar/reduce.mp")
	if code != 0 || !strings.Contains(out, "result: 285") {
		t.Errorf("interpret: code=%d out=%q, want result: 285", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runTool(t); code != 2 {
		t.Errorf("no-args exit code = %d, want 2", code)
	}
	if code, _, _ := runTool(t, "-run", "1,2,3", "../../examples/autopar/reduce.mp"); code != 2 {
		t.Errorf("arity-mismatch exit code = %d, want 2", code)
	}
}
