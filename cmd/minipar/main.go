// Command minipar is the minipar front end. It compiles programs to
// TPAL assembly, and with -auto runs the auto-parallelizing dependence
// pass first: sequential loops in counted induction form become parfor
// (with a reduction clause where the accumulate idiom holds), adjacent
// independent loop-bearing statements become par, and every rewrite is
// certified — the rewritten program must pass the full verification
// pipeline, interference pass included, with zero diagnostics, or the
// site is blocked and reported with its TP07x reason.
//
// Usage:
//
//	minipar program.mp                 # compile; print TPAL assembly
//	minipar -auto program.mp           # auto-parallelize; print the verdict table
//	minipar -auto -v program.mp        # verbose verdicts + certified bounds
//	minipar -auto -src program.mp      # also print the transformed source
//	minipar -auto -o out.mp program.mp # write the transformed source to out.mp
//	minipar -run 8,3 program.mp        # interpret with arguments 8 and 3
//	minipar -auto -run 8 program.mp    # sequential vs auto-parallel run + stats
//	minipar -auto -threshold 128 ...   # raise the spawn-cost threshold
//
// Exit status: 0 on success, 1 when compilation or the transform fails
// (or an -auto -run disagrees with the sequential result, which would
// mean a certification bug), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tpal/internal/minipar"
	"tpal/internal/minipar/autopar"
	"tpal/internal/tpal"
	"tpal/internal/tpal/machine"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool behind a testable seam.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("minipar", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		auto      = fs.Bool("auto", false, "run the auto-parallelizing pass and print the per-site verdict table")
		verbose   = fs.Bool("v", false, "verbose verdicts: candidate descriptions and certified bounds")
		showSrc   = fs.Bool("src", false, "print the transformed source (with -auto)")
		outPath   = fs.String("o", "", "write the transformed source to this file (with -auto)")
		runArgs   = fs.String("run", "", "comma-separated integer arguments: run the program")
		heartbeat = fs.Int64("heartbeat", 40, "heartbeat period for -auto -run machine execution")
		threshold = fs.Int64("threshold", autopar.DefaultSpawnThreshold, "spawn-cost threshold: minimum estimated work per site")
		trips     = fs.Int64("trips", autopar.DefaultTripAssume, "assumed trip count for loops with unknown bounds")
		noOpt     = fs.Bool("no-opt", false, "compile without the certified TPAL optimizer")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "minipar: exactly one program file expected")
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "minipar: %v\n", err)
		return 2
	}
	prog, err := minipar.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "minipar: %v\n", err)
		return 1
	}

	var argv []int64
	if *runArgs != "" {
		for _, f := range strings.Split(*runArgs, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fmt.Fprintf(stderr, "minipar: bad -run argument %q: %v\n", f, err)
				return 2
			}
			argv = append(argv, n)
		}
	}
	if *runArgs != "" && len(argv) != len(prog.Params) {
		fmt.Fprintf(stderr, "minipar: program takes %d parameter(s), -run gave %d\n", len(prog.Params), len(argv))
		return 2
	}

	if !*auto {
		if *runArgs != "" {
			got, err := minipar.Interpret(prog, argv)
			if err != nil {
				fmt.Fprintf(stderr, "minipar: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "result: %d\n", got)
			return 0
		}
		compile := minipar.Compile
		if *noOpt {
			compile = minipar.CompileRaw
		}
		asm, err := compile(prog)
		if err != nil {
			fmt.Fprintf(stderr, "minipar: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, asm.String())
		return 0
	}

	res, err := autopar.Transform(prog, autopar.Options{SpawnThreshold: *threshold, TripAssume: *trips})
	if err != nil {
		fmt.Fprintf(stderr, "minipar: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, res.Table(*verbose))
	if *showSrc {
		fmt.Fprintf(stdout, "\n%s", res.Source)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(res.Source), 0o644); err != nil {
			fmt.Fprintf(stderr, "minipar: %v\n", err)
			return 1
		}
	}
	if *runArgs == "" {
		return 0
	}

	// -auto -run: the certification contract, live. The sequential
	// interpretation of the original program and a traced heartbeat run
	// of the auto-parallelized machine code must agree exactly.
	want, err := minipar.Interpret(prog, argv)
	if err != nil {
		fmt.Fprintf(stderr, "minipar: sequential run: %v\n", err)
		return 1
	}
	regs := make(machine.RegFile, len(argv))
	for i, name := range res.Program.Params {
		regs[tpal.Reg(name)] = machine.IntV(argv[i])
	}
	mres, err := machine.Run(res.Compiled, machine.Config{Heartbeat: *heartbeat, RaceDetect: true, Regs: regs})
	if err != nil {
		fmt.Fprintf(stderr, "minipar: machine run: %v\n", err)
		return 1
	}
	got, ok := mres.Regs.Get("result").AsInt()
	if !ok {
		fmt.Fprintf(stderr, "minipar: result register holds %s\n", mres.Regs.Get("result"))
		return 1
	}
	fmt.Fprintf(stdout, "\nsequential result:    %d\n", want)
	fmt.Fprintf(stdout, "parallel result:      %d (heartbeat %d, race detector on)\n", got, *heartbeat)
	fmt.Fprintf(stdout, "machine stats:        %d steps, %d forks, %d joins, %d promotions handled\n",
		mres.Stats.Steps, mres.Stats.Forks, mres.Stats.Joins, mres.Stats.HandlerRuns)
	if got != want {
		fmt.Fprintln(stderr, "minipar: MISMATCH between sequential and parallel results — certification bug")
		return 1
	}
	fmt.Fprintln(stdout, "results agree")
	return 0
}
