package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestProgModePassesOnCorpus(t *testing.T) {
	for _, name := range []string{"prod", "pow", "fib"} {
		var buf bytes.Buffer
		if code := run([]string{"-prog", name}, &buf); code != 0 {
			t.Fatalf("-prog %s exited %d:\n%s", name, code, buf.String())
		}
		if !strings.Contains(buf.String(), "PASS") {
			t.Fatalf("-prog %s output missing PASS:\n%s", name, buf.String())
		}
	}
}

func TestBenchModeWritesChrome(t *testing.T) {
	chrome := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if code := run([]string{"-bench", "plus-reduce-array", "-scale", "0.02", "-chrome", chrome}, &buf); code != 0 {
		t.Fatalf("-bench exited %d:\n%s", code, buf.String())
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
}

func TestBenchRTWritesBaseline(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_rt.json")
	var buf bytes.Buffer
	code := run([]string{"-bench-rt", "-scale", "0.02", "-reps", "1", "-out", out}, &buf)
	// At toy scale the walls are microseconds and the delta is pure
	// noise, so the overhead gate may legitimately trip; only a real
	// failure to produce the baseline is an error here.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("exit %d and no baseline written:\n%s", code, buf.String())
	}
	var doc benchRTDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if len(doc.Benchmarks) != len(rtBenchmarks) || doc.Benchmarks[0].Name != "plus-reduce-array" {
		t.Fatalf("unexpected benchmark rows: %+v", doc.Benchmarks)
	}
	for i, r := range doc.Benchmarks {
		if r.Name != rtBenchmarks[i] {
			t.Errorf("benchmark row %d = %s, want %s", i, r.Name, rtBenchmarks[i])
		}
	}
	if len(doc.CorpusGaps) != 3 {
		t.Fatalf("corpus gap rows = %d, want 3", len(doc.CorpusGaps))
	}
	for _, g := range doc.CorpusGaps {
		if !g.WithinBound {
			t.Errorf("%s: observed gap %d exceeds static bound %d", g.Program, g.MaxObserved, g.StaticBound)
		}
	}
	if doc.OverheadGate.Benchmark != "plus-reduce-array" || doc.OverheadGate.Limit != overheadLimit {
		t.Fatalf("overhead gate misconfigured: %+v", doc.OverheadGate)
	}
	if len(doc.MachineBackend) == 0 {
		t.Fatal("baseline has no machine-backend rows")
	}
	for _, r := range doc.MachineBackend {
		if r.Steps == 0 || r.WallInterpNS == 0 || r.WallCompiledNS == 0 {
			t.Errorf("%s: incomplete backend row: %+v", r.Name, r)
		}
		if r.WallInterpRaceNS == 0 || r.WallCompiledRaceNS == 0 {
			t.Errorf("%s: missing sanitizer walls: %+v", r.Name, r)
		}
	}
	// At toy scale the speedup value is noise, but the gate must be
	// wired to the first kernel row with the contractual floor.
	if doc.BackendGate.Benchmark != doc.MachineBackend[0].Name || doc.BackendGate.Floor != backendSpeedupFloor {
		t.Fatalf("backend gate misconfigured: %+v", doc.BackendGate)
	}
}

func TestNoModeIsUsageError(t *testing.T) {
	var buf bytes.Buffer
	if code := run(nil, &buf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
