// Command tpal-trace records and inspects runtime traces.
//
// Three modes:
//
//	tpal-trace -bench mergesort-uniform          # trace one benchmark run
//	tpal-trace -bench plus-reduce-array -chrome trace.json
//	tpal-trace -prog prod                        # machine trace vs static bound
//	tpal-trace -bench-rt -out BENCH_rt.json      # canonical perf baseline
//
// -bench runs a benchmark under heartbeat scheduling with the tracer
// attached and prints the per-worker timeline, lane summaries, and the
// promotion service-latency histogram; -chrome additionally exports the
// trace in Chrome trace_event JSON (load via chrome://tracing or
// Perfetto).
//
// -prog runs a corpus TPAL program on the abstract machine with the
// tracer attached and cross-checks the observed promotion-gap histogram
// against the static TP050 latency bound from internal/tpal/analysis:
// for latency-finite programs the max observed gap must not exceed the
// proved bound, and the command exits nonzero if it does.
//
// -bench-rt is the canonical `make bench-rt` entry: it runs
// plus-reduce-array and mergesort-uniform with the tracer disabled and
// enabled, the corpus gap check, and writes BENCH_rt.json. It exits
// nonzero if the disabled-vs-enabled tracer delta on plus-reduce-array
// exceeds 5% (the overhead contract of DESIGN.md §11) or a gap check
// fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"tpal/internal/bench"
	"tpal/internal/heartbeat"
	"tpal/internal/interrupt"
	"tpal/internal/tpal"
	"tpal/internal/tpal/analysis"
	"tpal/internal/tpal/machine"
	"tpal/internal/tpal/opt"
	"tpal/internal/tpal/programs"
	"tpal/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("tpal-trace", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		benchName = fs.String("bench", "", "benchmark to trace (see tpal-bench -list)")
		progName  = fs.String("prog", "", "corpus program to trace on the abstract machine (prod, pow, fib)")
		benchRT   = fs.Bool("bench-rt", false, "run the canonical runtime baseline and write BENCH_rt.json")
		outPath   = fs.String("out", "BENCH_rt.json", "output path for -bench-rt")
		chrome    = fs.String("chrome", "", "export the trace as Chrome trace_event JSON to this file")
		workers   = fs.Int("workers", 1, "scheduler workers for -bench/-bench-rt")
		scale     = fs.Float64("scale", 1.0, "benchmark input scale multiplier")
		reps      = fs.Int("reps", 3, "repetitions per measurement (minimum kept)")
		hbMachine = fs.Int64("hb", 8, "abstract-machine heartbeat in instructions for -prog")
		capacity  = fs.Int("cap", 0, "per-lane ring capacity in events (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *benchRT:
		return runBenchRT(out, *outPath, *workers, *scale, *reps, *capacity)
	case *benchName != "":
		return runBench(out, *benchName, *workers, *scale, *capacity, *chrome)
	case *progName != "":
		return runProg(out, *progName, *hbMachine, *capacity, *chrome)
	}
	fmt.Fprintln(out, "tpal-trace: one of -bench, -prog, or -bench-rt is required")
	fs.Usage()
	return 2
}

// runBench traces one heartbeat-scheduled benchmark run and prints the
// timeline.
func runBench(out io.Writer, name string, workers int, scale float64, capacity int, chromePath string) int {
	b, err := bench.ByName(name)
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}
	b.Setup(scale)
	b.RunSerial() // establish the verification reference

	tr := trace.New(workers, capacity)
	st := heartbeat.Run(heartbeat.Config{
		Workers:   workers,
		Mechanism: interrupt.NewPingThread(),
		Tracer:    tr,
	}, b.RunHeartbeat)
	if err := b.Verify(); err != nil {
		fmt.Fprintf(out, "verification failed: %v\n", err)
		return 1
	}

	d := tr.Drain()
	tl := trace.BuildTimeline(d)
	fmt.Fprintf(out, "%s: %v wall, %d promotions, work %v span %v\n\n",
		name, st.Elapsed.Round(time.Microsecond), st.Promotions,
		time.Duration(st.WorkNanos).Round(time.Microsecond),
		time.Duration(st.SpanNanos).Round(time.Microsecond))
	tl.WriteText(out)

	if lat := trace.ServiceLatencies(d); len(lat) > 0 {
		fmt.Fprint(out, "\npromotion service latency (beat observed -> promotion):\n")
		buckets, maxLat := trace.HistogramOf(lat)
		trace.WriteHistogram(out, buckets[:], "ns")
		fmt.Fprintf(out, "max observed service latency: %v\n", time.Duration(maxLat))
	}
	if chromePath != "" {
		if err := writeChromeFile(chromePath, d); err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "\nchrome trace written to %s (%d events, %d dropped)\n",
			chromePath, len(d.Events), d.Dropped)
	}
	return 0
}

// corpusEntry pairs a corpus program with machine-ready entry registers
// (the same files the analysis test suite uses).
type corpusEntry struct {
	name string
	prog *tpal.Program
	regs machine.RegFile
}

func corpus() []corpusEntry {
	return []corpusEntry{
		{"prod", programs.Prod(), machine.RegFile{"a": machine.IntV(9), "b": machine.IntV(4)}},
		{"pow", programs.Pow(), machine.RegFile{"d": machine.IntV(2), "e": machine.IntV(6)}},
		{"fib", programs.Fib(), machine.RegFile{"n": machine.IntV(9)}},
	}
}

func corpusByName(name string) (corpusEntry, error) {
	for _, c := range corpus() {
		if c.name == name {
			return c, nil
		}
	}
	return corpusEntry{}, fmt.Errorf("tpal-trace: unknown corpus program %q (want prod, pow, or fib)", name)
}

// gapCheck is one program's observed-vs-proved promotion-latency result.
type gapCheck struct {
	Program     string `json:"program"`
	Class       string `json:"latency_class"`
	StaticBound int64  `json:"static_bound"`
	MaxObserved int64  `json:"max_observed_gap"`
	Promotions  int64  `json:"promotions"`
	// WithinBound is the hard check for latency-finite programs; for
	// stack-bounded classes the bound is per consumed frame, not global,
	// so the class alone is verified and WithinBound is reported true.
	WithinBound bool             `json:"within_bound"`
	GapHist     map[string]int64 `json:"gap_hist,omitempty"`
}

// checkGap runs one corpus program on the machine with the tracer
// attached and compares the observed promotion-gap maximum against the
// static liveness bound.
func checkGap(c corpusEntry, hb int64, capacity int) (gapCheck, *trace.Trace, error) {
	entry := make([]tpal.Reg, 0, len(c.regs))
	for r := range c.regs {
		entry = append(entry, r)
	}
	rep := analysis.Analyze(c.prog, analysis.Options{EntryRegs: entry})
	if len(rep.Diags) != 0 {
		return gapCheck{}, nil, fmt.Errorf("%s: analysis diagnostics: %v", c.name, rep.Diags)
	}

	tr := trace.New(1, capacity)
	res, err := machine.Run(c.prog, machine.Config{
		Heartbeat: hb,
		Regs:      c.regs,
		Tracer:    tr,
	})
	if err != nil {
		return gapCheck{}, nil, fmt.Errorf("%s: machine: %w", c.name, err)
	}
	d := tr.Drain()

	g := gapCheck{
		Program:     c.name,
		Class:       rep.Latency.Class.String(),
		StaticBound: rep.Latency.Bound,
		MaxObserved: d.MaxGap,
		Promotions:  res.Stats.HandlerRuns,
		WithinBound: true,
		GapHist:     d.GapHistMap(),
	}
	if rep.Latency.Class == analysis.LatencyFinite && d.MaxGap > rep.Latency.Bound {
		g.WithinBound = false
	}
	return g, d, nil
}

// runProg traces one corpus program on the abstract machine and checks
// the observed gaps against the static bound.
func runProg(out io.Writer, name string, hb int64, capacity int, chromePath string) int {
	c, err := corpusByName(name)
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}
	g, d, err := checkGap(c, hb, capacity)
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}

	fmt.Fprintf(out, "%s: latency %s(%d), observed max gap %d over %d promotions\n",
		g.Program, g.Class, g.StaticBound, g.MaxObserved, g.Promotions)
	fmt.Fprintln(out, "\npromotion-gap histogram (machine steps between promotion-ready points):")
	writeGapHist(out, g.GapHist)
	if chromePath != "" {
		if err := writeChromeFile(chromePath, d); err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "\nchrome trace written to %s\n", chromePath)
	}
	if !g.WithinBound {
		fmt.Fprintf(out, "\nFAIL: observed gap %d exceeds the static bound %d\n", g.MaxObserved, g.StaticBound)
		return 1
	}
	fmt.Fprint(out, "\nPASS: observed gaps respect the static bound\n")
	return 0
}

func writeGapHist(out io.Writer, hist map[string]int64) {
	keys := make([]int64, 0, len(hist))
	for k := range hist {
		var v int64
		fmt.Sscanf(k, "%d", &v)
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Fprintf(out, "  >=%-6d %d\n", k, hist[fmt.Sprintf("%d", k)])
	}
}

// rtResult is one benchmark's row in BENCH_rt.json.
type rtResult struct {
	Name           string  `json:"name"`
	WallSerialNS   int64   `json:"wall_serial_ns"`
	WallDisabledNS int64   `json:"wall_tracer_disabled_ns"`
	WallEnabledNS  int64   `json:"wall_tracer_enabled_ns"`
	TracerDelta    float64 `json:"tracer_delta"` // (enabled-disabled)/disabled
	WorkNS         int64   `json:"work_ns"`
	SpanNS         int64   `json:"span_ns"`
	Promotions     int64   `json:"promotions"`
	Utilization    float64 `json:"utilization"`
	TraceEvents    int     `json:"trace_events"`
	TraceDropped   int64   `json:"trace_dropped"`
	HeartbeatsSeen int64   `json:"heartbeats_seen"`
	TasksCreated   int64   `json:"tasks_created"`
}

// benchRTDoc is the schema of BENCH_rt.json.
type benchRTDoc struct {
	GeneratedBy string `json:"generated_by"`
	Config      struct {
		Workers   int     `json:"workers"`
		Scale     float64 `json:"scale"`
		Reps      int     `json:"reps"`
		Mechanism string  `json:"mechanism"`
	} `json:"config"`
	Benchmarks   []rtResult `json:"benchmarks"`
	CorpusGaps   []gapCheck `json:"corpus_gap_check"`
	OptDeltas    []optCheck `json:"optimizer_delta"`
	OverheadGate struct {
		Benchmark string  `json:"benchmark"`
		Limit     float64 `json:"limit"`
		Delta     float64 `json:"delta"`
		Pass      bool    `json:"pass"`
	} `json:"overhead_gate"`
}

// optCheck is one corpus program's certified-optimizer delta: the same
// heartbeat run (race sanitizer on) executed on the submitted and the
// optimized form. The certifier guarantees the result registers agree;
// the step delta is the measured payoff.
type optCheck struct {
	Program     string `json:"program"`
	Rewrites    int    `json:"rewrites"`
	StepsBefore int64  `json:"steps_before"`
	StepsAfter  int64  `json:"steps_after"`
	// Delta is (after-before)/before: negative means the optimized form
	// runs fewer machine steps.
	Delta float64 `json:"delta"`
}

// checkOpt measures one corpus program's optimizer delta under the same
// heartbeat as the gap check, with the determinacy-race sanitizer on.
func checkOpt(c corpusEntry, hb int64) (optCheck, error) {
	entry := make([]tpal.Reg, 0, len(c.regs))
	for r := range c.regs {
		entry = append(entry, r)
	}
	res, err := opt.Optimize(c.prog, opt.Options{EntryRegs: entry})
	if err != nil {
		return optCheck{}, fmt.Errorf("%s: optimize: %w", c.name, err)
	}
	cfg := machine.Config{Heartbeat: hb, RaceDetect: true, Regs: c.regs}
	before, err := machine.Run(c.prog, cfg)
	if err != nil {
		return optCheck{}, fmt.Errorf("%s: machine (submitted): %w", c.name, err)
	}
	after, err := machine.Run(res.Program, cfg)
	if err != nil {
		return optCheck{}, fmt.Errorf("%s: machine (optimized): %w", c.name, err)
	}
	o := optCheck{
		Program:     c.name,
		Rewrites:    res.Rewrites(),
		StepsBefore: before.Stats.Steps,
		StepsAfter:  after.Stats.Steps,
	}
	if o.StepsBefore > 0 {
		o.Delta = float64(o.StepsAfter-o.StepsBefore) / float64(o.StepsBefore)
	}
	return o, nil
}

// overheadLimit is the disabled-vs-enabled tracer delta the bench-rt
// gate enforces on plus-reduce-array, the finest-grained benchmark in
// the suite (a one-addition loop body maximizes per-event visibility).
const overheadLimit = 0.05

// rtBenchmarks are the canonical baseline benchmarks: the finest-
// grained loop (every overhead maximally visible), an irregular
// nested loop (spmv's per-row work varies by structure), a dense
// phase-barriered loop nest (floyd-warshall), and the mixed
// recursive/iterative sort.
var rtBenchmarks = []string{"plus-reduce-array", "spmv-random", "floyd-warshall-1K", "mergesort-uniform"}

// measureRT measures one benchmark: min-of-reps wall with the tracer
// disabled (nil) and enabled, keeping the enabled run's drained trace
// for utilization.
func measureRT(name string, workers int, scale float64, reps, capacity int) (rtResult, error) {
	b, err := bench.ByName(name)
	if err != nil {
		return rtResult{}, err
	}
	b.Setup(scale)

	serialStart := time.Now()
	b.RunSerial()
	serialWall := time.Since(serialStart)

	once := func(tr *trace.Tracer) (heartbeat.Stats, error) {
		st := heartbeat.Run(heartbeat.Config{
			Workers:   workers,
			Mechanism: interrupt.NewPingThread(),
			Tracer:    tr,
		}, b.RunHeartbeat)
		if err := b.Verify(); err != nil {
			return heartbeat.Stats{}, fmt.Errorf("%s: %w", name, err)
		}
		return st, nil
	}

	// One untimed warm-up, then run both configurations every rep,
	// swapping which goes first each time, so cache state, heap growth,
	// and CPU frequency drift hit both sides equally.
	if _, err := once(nil); err != nil {
		return rtResult{}, err
	}
	var disabledWall, enabledWall time.Duration
	var st heartbeat.Stats
	var d *trace.Trace
	runDisabled := func() error {
		dst, err := once(nil)
		if err != nil {
			return err
		}
		if disabledWall == 0 || dst.Elapsed < disabledWall {
			disabledWall = dst.Elapsed
		}
		return nil
	}
	runEnabled := func() error {
		etr := trace.New(workers, capacity)
		est, err := once(etr)
		if err != nil {
			return err
		}
		if enabledWall == 0 || est.Elapsed < enabledWall {
			// Drain now, not after the loop: the trace duration feeds the
			// utilization denominator and must cover only this run.
			enabledWall, st, d = est.Elapsed, est, etr.Drain()
		}
		return nil
	}
	for r := 0; r < reps; r++ {
		first, second := runDisabled, runEnabled
		if r%2 == 1 {
			first, second = runEnabled, runDisabled
		}
		if err := first(); err != nil {
			return rtResult{}, err
		}
		if err := second(); err != nil {
			return rtResult{}, err
		}
	}

	res := rtResult{
		Name:           name,
		WallSerialNS:   serialWall.Nanoseconds(),
		WallDisabledNS: disabledWall.Nanoseconds(),
		WallEnabledNS:  enabledWall.Nanoseconds(),
		WorkNS:         st.WorkNanos,
		SpanNS:         st.SpanNanos,
		Promotions:     st.Promotions,
		Utilization:    trace.BuildTimeline(d).Utilization(),
		TraceEvents:    len(d.Events),
		TraceDropped:   d.Dropped,
		HeartbeatsSeen: st.Sched.HeartbeatsSeen,
		TasksCreated:   st.Sched.TasksCreated,
	}
	if disabledWall > 0 {
		res.TracerDelta = float64(enabledWall-disabledWall) / float64(disabledWall)
	}
	return res, nil
}

// runBenchRT produces BENCH_rt.json and enforces the overhead gate.
func runBenchRT(out io.Writer, outPath string, workers int, scale float64, reps, capacity int) int {
	doc := benchRTDoc{GeneratedBy: "tpal-trace -bench-rt"}
	doc.Config.Workers = workers
	doc.Config.Scale = scale
	doc.Config.Reps = reps
	doc.Config.Mechanism = "ping-thread"

	for _, name := range rtBenchmarks {
		fmt.Fprintf(out, "measuring %s (scale %g, %d reps)...\n", name, scale, reps)
		res, err := measureRT(name, workers, scale, reps, capacity)
		if err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "  wall %v disabled, %v enabled (delta %+.2f%%), %d promotions, utilization %.3f\n",
			time.Duration(res.WallDisabledNS).Round(time.Microsecond),
			time.Duration(res.WallEnabledNS).Round(time.Microsecond),
			res.TracerDelta*100, res.Promotions, res.Utilization)
		doc.Benchmarks = append(doc.Benchmarks, res)
	}

	gapsOK := true
	for _, c := range corpus() {
		g, _, err := checkGap(c, 8, capacity)
		if err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "gap check %s: %s(%d), observed max %d: %s\n",
			g.Program, g.Class, g.StaticBound, g.MaxObserved, passFail(g.WithinBound))
		if !g.WithinBound {
			gapsOK = false
		}
		doc.CorpusGaps = append(doc.CorpusGaps, g)
	}

	for _, c := range corpus() {
		o, err := checkOpt(c, 8)
		if err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "opt delta %s: %d rewrites, steps %d -> %d (%+.2f%%)\n",
			o.Program, o.Rewrites, o.StepsBefore, o.StepsAfter, o.Delta*100)
		doc.OptDeltas = append(doc.OptDeltas, o)
	}

	doc.OverheadGate.Benchmark = rtBenchmarks[0]
	doc.OverheadGate.Limit = overheadLimit
	doc.OverheadGate.Delta = doc.Benchmarks[0].TracerDelta
	doc.OverheadGate.Pass = doc.Benchmarks[0].TracerDelta <= overheadLimit

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(out, err)
		return 1
	}
	fmt.Fprintf(out, "wrote %s\n", outPath)

	if !doc.OverheadGate.Pass {
		fmt.Fprintf(out, "FAIL: tracer delta %+.2f%% on %s exceeds the %.0f%% overhead contract\n",
			doc.OverheadGate.Delta*100, doc.OverheadGate.Benchmark, overheadLimit*100)
		return 1
	}
	if !gapsOK {
		fmt.Fprintln(out, "FAIL: an observed promotion gap exceeds its static bound")
		return 1
	}
	fmt.Fprintf(out, "PASS: tracer delta %+.2f%% within %.0f%%; all observed gaps respect their static bounds\n",
		doc.OverheadGate.Delta*100, overheadLimit*100)
	return 0
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

func writeChromeFile(path string, d *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
