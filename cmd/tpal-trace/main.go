// Command tpal-trace records and inspects runtime traces.
//
// Three modes:
//
//	tpal-trace -bench mergesort-uniform          # trace one benchmark run
//	tpal-trace -bench plus-reduce-array -chrome trace.json
//	tpal-trace -prog prod                        # machine trace vs static bound
//	tpal-trace -bench-rt -out BENCH_rt.json      # canonical perf baseline
//
// -bench runs a benchmark under heartbeat scheduling with the tracer
// attached and prints the per-worker timeline, lane summaries, and the
// promotion service-latency histogram; -chrome additionally exports the
// trace in Chrome trace_event JSON (load via chrome://tracing or
// Perfetto).
//
// -prog runs a corpus TPAL program on the abstract machine with the
// tracer attached and cross-checks the observed promotion-gap histogram
// against the static TP050 latency bound from internal/tpal/analysis:
// for latency-finite programs the max observed gap must not exceed the
// proved bound, and the command exits nonzero if it does.
//
// -bench-rt is the canonical `make bench-rt` entry: it runs
// plus-reduce-array and mergesort-uniform with the tracer disabled and
// enabled, the corpus gap check, and writes BENCH_rt.json. It exits
// nonzero if the disabled-vs-enabled tracer delta on plus-reduce-array
// exceeds 5% (the overhead contract of DESIGN.md §11) or a gap check
// fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"tpal/internal/bench"
	"tpal/internal/heartbeat"
	"tpal/internal/interrupt"
	"tpal/internal/minipar"
	"tpal/internal/tpal"
	"tpal/internal/tpal/analysis"
	"tpal/internal/tpal/machine"
	"tpal/internal/tpal/machine/compile"
	"tpal/internal/tpal/opt"
	"tpal/internal/tpal/programs"
	"tpal/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("tpal-trace", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		benchName = fs.String("bench", "", "benchmark to trace (see tpal-bench -list)")
		progName  = fs.String("prog", "", "corpus program to trace on the abstract machine (prod, pow, fib)")
		benchRT   = fs.Bool("bench-rt", false, "run the canonical runtime baseline and write BENCH_rt.json")
		outPath   = fs.String("out", "BENCH_rt.json", "output path for -bench-rt")
		chrome    = fs.String("chrome", "", "export the trace as Chrome trace_event JSON to this file")
		workers   = fs.Int("workers", 1, "scheduler workers for -bench/-bench-rt")
		scale     = fs.Float64("scale", 1.0, "benchmark input scale multiplier")
		reps      = fs.Int("reps", 3, "repetitions per measurement (minimum kept)")
		hbMachine = fs.Int64("hb", 8, "abstract-machine heartbeat in instructions for -prog")
		capacity  = fs.Int("cap", 0, "per-lane ring capacity in events (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *benchRT:
		return runBenchRT(out, *outPath, *workers, *scale, *reps, *capacity)
	case *benchName != "":
		return runBench(out, *benchName, *workers, *scale, *capacity, *chrome)
	case *progName != "":
		return runProg(out, *progName, *hbMachine, *capacity, *chrome)
	}
	fmt.Fprintln(out, "tpal-trace: one of -bench, -prog, or -bench-rt is required")
	fs.Usage()
	return 2
}

// runBench traces one heartbeat-scheduled benchmark run and prints the
// timeline.
func runBench(out io.Writer, name string, workers int, scale float64, capacity int, chromePath string) int {
	b, err := bench.ByName(name)
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}
	b.Setup(scale)
	b.RunSerial() // establish the verification reference

	tr := trace.New(workers, capacity)
	st := heartbeat.Run(heartbeat.Config{
		Workers:   workers,
		Mechanism: interrupt.NewPingThread(),
		Tracer:    tr,
	}, b.RunHeartbeat)
	if err := b.Verify(); err != nil {
		fmt.Fprintf(out, "verification failed: %v\n", err)
		return 1
	}

	d := tr.Drain()
	tl := trace.BuildTimeline(d)
	fmt.Fprintf(out, "%s: %v wall, %d promotions, work %v span %v\n\n",
		name, st.Elapsed.Round(time.Microsecond), st.Promotions,
		time.Duration(st.WorkNanos).Round(time.Microsecond),
		time.Duration(st.SpanNanos).Round(time.Microsecond))
	tl.WriteText(out)

	if lat := trace.ServiceLatencies(d); len(lat) > 0 {
		fmt.Fprint(out, "\npromotion service latency (beat observed -> promotion):\n")
		buckets, maxLat := trace.HistogramOf(lat)
		trace.WriteHistogram(out, buckets[:], "ns")
		fmt.Fprintf(out, "max observed service latency: %v\n", time.Duration(maxLat))
	}
	if chromePath != "" {
		if err := writeChromeFile(chromePath, d); err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "\nchrome trace written to %s (%d events, %d dropped)\n",
			chromePath, len(d.Events), d.Dropped)
	}
	return 0
}

// corpusEntry pairs a corpus program with machine-ready entry registers
// (the same files the analysis test suite uses).
type corpusEntry struct {
	name string
	prog *tpal.Program
	regs machine.RegFile
}

func corpus() []corpusEntry {
	return []corpusEntry{
		{"prod", programs.Prod(), machine.RegFile{"a": machine.IntV(9), "b": machine.IntV(4)}},
		{"pow", programs.Pow(), machine.RegFile{"d": machine.IntV(2), "e": machine.IntV(6)}},
		{"fib", programs.Fib(), machine.RegFile{"n": machine.IntV(9)}},
	}
}

func corpusByName(name string) (corpusEntry, error) {
	for _, c := range corpus() {
		if c.name == name {
			return c, nil
		}
	}
	return corpusEntry{}, fmt.Errorf("tpal-trace: unknown corpus program %q (want prod, pow, or fib)", name)
}

// gapCheck is one program's observed-vs-proved promotion-latency result.
type gapCheck struct {
	Program     string `json:"program"`
	Class       string `json:"latency_class"`
	StaticBound int64  `json:"static_bound"`
	MaxObserved int64  `json:"max_observed_gap"`
	Promotions  int64  `json:"promotions"`
	// WithinBound is the hard check for latency-finite programs; for
	// stack-bounded classes the bound is per consumed frame, not global,
	// so the class alone is verified and WithinBound is reported true.
	WithinBound bool             `json:"within_bound"`
	GapHist     map[string]int64 `json:"gap_hist,omitempty"`
}

// checkGap runs one corpus program on the machine with the tracer
// attached and compares the observed promotion-gap maximum against the
// static liveness bound.
func checkGap(c corpusEntry, hb int64, capacity int) (gapCheck, *trace.Trace, error) {
	entry := make([]tpal.Reg, 0, len(c.regs))
	for r := range c.regs {
		entry = append(entry, r)
	}
	rep := analysis.Analyze(c.prog, analysis.Options{EntryRegs: entry})
	if len(rep.Diags) != 0 {
		return gapCheck{}, nil, fmt.Errorf("%s: analysis diagnostics: %v", c.name, rep.Diags)
	}

	tr := trace.New(1, capacity)
	res, err := machine.Run(c.prog, machine.Config{
		Heartbeat: hb,
		Regs:      c.regs,
		Tracer:    tr,
	})
	if err != nil {
		return gapCheck{}, nil, fmt.Errorf("%s: machine: %w", c.name, err)
	}
	d := tr.Drain()

	g := gapCheck{
		Program:     c.name,
		Class:       rep.Latency.Class.String(),
		StaticBound: rep.Latency.Bound,
		MaxObserved: d.MaxGap,
		Promotions:  res.Stats.HandlerRuns,
		WithinBound: true,
		GapHist:     d.GapHistMap(),
	}
	if rep.Latency.Class == analysis.LatencyFinite && d.MaxGap > rep.Latency.Bound {
		g.WithinBound = false
	}
	return g, d, nil
}

// runProg traces one corpus program on the abstract machine and checks
// the observed gaps against the static bound.
func runProg(out io.Writer, name string, hb int64, capacity int, chromePath string) int {
	c, err := corpusByName(name)
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}
	g, d, err := checkGap(c, hb, capacity)
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}

	fmt.Fprintf(out, "%s: latency %s(%d), observed max gap %d over %d promotions\n",
		g.Program, g.Class, g.StaticBound, g.MaxObserved, g.Promotions)
	fmt.Fprintln(out, "\npromotion-gap histogram (machine steps between promotion-ready points):")
	writeGapHist(out, g.GapHist)
	if chromePath != "" {
		if err := writeChromeFile(chromePath, d); err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "\nchrome trace written to %s\n", chromePath)
	}
	if !g.WithinBound {
		fmt.Fprintf(out, "\nFAIL: observed gap %d exceeds the static bound %d\n", g.MaxObserved, g.StaticBound)
		return 1
	}
	fmt.Fprint(out, "\nPASS: observed gaps respect the static bound\n")
	return 0
}

func writeGapHist(out io.Writer, hist map[string]int64) {
	keys := make([]int64, 0, len(hist))
	for k := range hist {
		var v int64
		fmt.Sscanf(k, "%d", &v)
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Fprintf(out, "  >=%-6d %d\n", k, hist[fmt.Sprintf("%d", k)])
	}
}

// rtResult is one benchmark's row in BENCH_rt.json.
type rtResult struct {
	Name           string  `json:"name"`
	WallSerialNS   int64   `json:"wall_serial_ns"`
	WallDisabledNS int64   `json:"wall_tracer_disabled_ns"`
	WallEnabledNS  int64   `json:"wall_tracer_enabled_ns"`
	TracerDelta    float64 `json:"tracer_delta"` // (enabled-disabled)/disabled
	WorkNS         int64   `json:"work_ns"`
	SpanNS         int64   `json:"span_ns"`
	Promotions     int64   `json:"promotions"`
	Utilization    float64 `json:"utilization"`
	TraceEvents    int     `json:"trace_events"`
	TraceDropped   int64   `json:"trace_dropped"`
	HeartbeatsSeen int64   `json:"heartbeats_seen"`
	TasksCreated   int64   `json:"tasks_created"`
}

// benchRTDoc is the schema of BENCH_rt.json.
type benchRTDoc struct {
	GeneratedBy string `json:"generated_by"`
	Config      struct {
		Workers   int     `json:"workers"`
		Scale     float64 `json:"scale"`
		Reps      int     `json:"reps"`
		Mechanism string  `json:"mechanism"`
	} `json:"config"`
	Benchmarks []rtResult `json:"benchmarks"`
	// MachineBackend is the interp-vs-compiled wall comparison over the
	// abstract-machine kernels, with the interpreted and compiled walls
	// as separate fields per row (sanitizer off and on).
	MachineBackend []backendRow `json:"machine_backend"`
	CorpusGaps     []gapCheck   `json:"corpus_gap_check"`
	OptDeltas      []optCheck   `json:"optimizer_delta"`
	OverheadGate   struct {
		Benchmark string  `json:"benchmark"`
		Limit     float64 `json:"limit"`
		Delta     float64 `json:"delta"`
		Pass      bool    `json:"pass"`
	} `json:"overhead_gate"`
	// BackendGate enforces the dispatch contract: the compiled backend's
	// speedup on the plus-reduce-array machine kernel (sanitizer off)
	// must meet the floor.
	BackendGate struct {
		Benchmark string  `json:"benchmark"`
		Floor     float64 `json:"floor"`
		Speedup   float64 `json:"speedup"`
		Pass      bool    `json:"pass"`
	} `json:"backend_gate"`
}

// optCheck is one corpus program's certified-optimizer delta: the same
// heartbeat run (race sanitizer on) executed on the submitted and the
// optimized form. The certifier guarantees the result registers agree;
// the step delta is the measured payoff.
type optCheck struct {
	Program     string `json:"program"`
	Rewrites    int    `json:"rewrites"`
	StepsBefore int64  `json:"steps_before"`
	StepsAfter  int64  `json:"steps_after"`
	// Delta is (after-before)/before: negative means the optimized form
	// runs fewer machine steps.
	Delta float64 `json:"delta"`
}

// checkOpt measures one corpus program's optimizer delta under the same
// heartbeat as the gap check, with the determinacy-race sanitizer on.
func checkOpt(c corpusEntry, hb int64) (optCheck, error) {
	entry := make([]tpal.Reg, 0, len(c.regs))
	for r := range c.regs {
		entry = append(entry, r)
	}
	res, err := opt.Optimize(c.prog, opt.Options{EntryRegs: entry})
	if err != nil {
		return optCheck{}, fmt.Errorf("%s: optimize: %w", c.name, err)
	}
	cfg := machine.Config{Heartbeat: hb, RaceDetect: true, Regs: c.regs}
	before, err := machine.Run(c.prog, cfg)
	if err != nil {
		return optCheck{}, fmt.Errorf("%s: machine (submitted): %w", c.name, err)
	}
	after, err := machine.Run(res.Program, cfg)
	if err != nil {
		return optCheck{}, fmt.Errorf("%s: machine (optimized): %w", c.name, err)
	}
	o := optCheck{
		Program:     c.name,
		Rewrites:    res.Rewrites(),
		StepsBefore: before.Stats.Steps,
		StepsAfter:  after.Stats.Steps,
	}
	if o.StepsBefore > 0 {
		o.Delta = float64(o.StepsAfter-o.StepsBefore) / float64(o.StepsBefore)
	}
	return o, nil
}

// overheadLimit is the disabled-vs-enabled tracer delta the bench-rt
// gate enforces on plus-reduce-array, the finest-grained benchmark in
// the suite (a one-addition loop body maximizes per-event visibility).
const overheadLimit = 0.05

// backendSpeedupFloor is the dispatch gate: the closure-threaded
// backend must run the plus-reduce-array machine kernel at least this
// many times faster than the interpreter (sanitizer off), or bench-rt
// fails. The kernel is the finest-grained machine program in the
// suite, so it isolates dispatch cost the way plus-reduce-array
// isolates tracer cost.
const backendSpeedupFloor = 3.0

// plusReduceMP is the plus-reduce-array kernel as a minipar reduction
// loop: the machine-level analogue of the native benchmark, one
// addition per iteration through the parfor promotion machinery.
const plusReduceMP = `params n
var total = 0
parfor i in 0 .. n reduce(total, +) {
    total = total + i
}
return total
`

// backendRow is one machine kernel's interp-vs-compiled measurement in
// BENCH_rt.json. The two backends are observably identical (the
// equivalence suite holds them to the same results, faults, and
// stats), so Steps is a single column; the walls are where they
// differ. The race columns rerun the same configuration with the
// determinacy-race sanitizer on — the canonical serve admission mode —
// where shadow-memory cost dilutes the dispatch win.
type backendRow struct {
	Name          string  `json:"name"`
	Steps         int64   `json:"steps"`
	ChecksHoisted int     `json:"checks_hoisted"`

	WallInterpNS   int64   `json:"wall_interp_ns"`
	WallCompiledNS int64   `json:"wall_compiled_ns"`
	Speedup        float64 `json:"speedup"` // interp wall / compiled wall

	WallInterpRaceNS   int64   `json:"wall_interp_race_ns"`
	WallCompiledRaceNS int64   `json:"wall_compiled_race_ns"`
	SpeedupRace        float64 `json:"speedup_race"`
}

// machineKernels are the abstract-machine programs measured on both
// backends: the plus-reduce-array reduction kernel compiled from
// minipar plus the paper corpus at argument sizes that make dispatch,
// not startup, the measured quantity.
func machineKernels(scale float64) ([]corpusEntry, error) {
	mp, err := minipar.Parse(plusReduceMP)
	if err != nil {
		return nil, fmt.Errorf("plus-reduce-array kernel: %w", err)
	}
	prog, err := minipar.Compile(mp)
	if err != nil {
		return nil, fmt.Errorf("plus-reduce-array kernel: %w", err)
	}
	scaled := func(n int64) int64 {
		n = int64(float64(n) * scale)
		if n < 16 {
			n = 16
		}
		return n
	}
	return []corpusEntry{
		{"plus-reduce-array", prog, machine.RegFile{"n": machine.IntV(scaled(60_000))}},
		{"prod", programs.Prod(), machine.RegFile{"a": machine.IntV(scaled(20_000)), "b": machine.IntV(3)}},
		{"pow", programs.Pow(), machine.RegFile{"d": machine.IntV(1), "e": machine.IntV(scaled(20_000))}},
		{"fib", programs.Fib(), machine.RegFile{"n": machine.IntV(18)}},
	}, nil
}

// measureBackends times one kernel on the interpreter and the compiled
// backend (min of reps), sanitizer off and on, cross-checking that the
// two backends agree on the step count every run.
func measureBackends(c corpusEntry, reps int) (backendRow, error) {
	entry := make([]tpal.Reg, 0, len(c.regs))
	for r := range c.regs {
		entry = append(entry, r)
	}
	report := analysis.Analyze(c.prog, analysis.Options{EntryRegs: entry})
	opts := compile.Options{}
	if !analysis.HasErrors(report.Diags) {
		opts.Report = report
	}
	cp, err := compile.Compile(c.prog, opts)
	if err != nil {
		return backendRow{}, fmt.Errorf("%s: compile: %w", c.name, err)
	}
	row := backendRow{Name: c.name, ChecksHoisted: cp.Hoisted()}

	measure := func(race bool) (interpWall, compiledWall time.Duration, steps int64, err error) {
		cfg := machine.Config{Heartbeat: 100, RaceDetect: race, SkipVerify: true}
		for r := 0; r < reps+1; r++ { // first lap is an untimed warm-up
			icfg := cfg
			icfg.Regs = c.regs.Clone()
			start := time.Now()
			ires, ierr := machine.Run(c.prog, icfg)
			iw := time.Since(start)

			ccfg := cfg
			ccfg.Regs = c.regs.Clone()
			start = time.Now()
			cres, cerr := cp.Run(ccfg)
			cw := time.Since(start)

			if ierr != nil || cerr != nil {
				return 0, 0, 0, fmt.Errorf("%s: interp=%v compiled=%v", c.name, ierr, cerr)
			}
			if ires.Stats.Steps != cres.Stats.Steps {
				return 0, 0, 0, fmt.Errorf("%s: step divergence: interp=%d compiled=%d",
					c.name, ires.Stats.Steps, cres.Stats.Steps)
			}
			if r == 0 {
				continue
			}
			if interpWall == 0 || iw < interpWall {
				interpWall = iw
			}
			if compiledWall == 0 || cw < compiledWall {
				compiledWall = cw
			}
			steps = ires.Stats.Steps
		}
		return interpWall, compiledWall, steps, nil
	}

	iw, cw, steps, err := measure(false)
	if err != nil {
		return backendRow{}, err
	}
	row.Steps = steps
	row.WallInterpNS = iw.Nanoseconds()
	row.WallCompiledNS = cw.Nanoseconds()
	if cw > 0 {
		row.Speedup = float64(iw) / float64(cw)
	}

	iw, cw, _, err = measure(true)
	if err != nil {
		return backendRow{}, err
	}
	row.WallInterpRaceNS = iw.Nanoseconds()
	row.WallCompiledRaceNS = cw.Nanoseconds()
	if cw > 0 {
		row.SpeedupRace = float64(iw) / float64(cw)
	}
	return row, nil
}

// rtBenchmarks are the canonical baseline benchmarks: the finest-
// grained loop (every overhead maximally visible), an irregular
// nested loop (spmv's per-row work varies by structure), the skewed
// spmv variant (powerlaw's giant rows stress promotion under load
// imbalance), a dense phase-barriered loop nest (floyd-warshall), and
// the sort under both input distributions (exponential pre-sorted-ness
// shifts the recursion shape).
var rtBenchmarks = []string{
	"plus-reduce-array", "spmv-random", "spmv-powerlaw",
	"floyd-warshall-1K", "mergesort-uniform", "mergesort-exp",
}

// measureRT measures one benchmark: min-of-reps wall with the tracer
// disabled (nil) and enabled, keeping the enabled run's drained trace
// for utilization.
func measureRT(name string, workers int, scale float64, reps, capacity int) (rtResult, error) {
	b, err := bench.ByName(name)
	if err != nil {
		return rtResult{}, err
	}
	b.Setup(scale)

	serialStart := time.Now()
	b.RunSerial()
	serialWall := time.Since(serialStart)

	once := func(tr *trace.Tracer) (heartbeat.Stats, error) {
		st := heartbeat.Run(heartbeat.Config{
			Workers:   workers,
			Mechanism: interrupt.NewPingThread(),
			Tracer:    tr,
		}, b.RunHeartbeat)
		if err := b.Verify(); err != nil {
			return heartbeat.Stats{}, fmt.Errorf("%s: %w", name, err)
		}
		return st, nil
	}

	// One untimed warm-up, then run both configurations every rep,
	// swapping which goes first each time, so cache state, heap growth,
	// and CPU frequency drift hit both sides equally.
	if _, err := once(nil); err != nil {
		return rtResult{}, err
	}
	var disabledWall, enabledWall time.Duration
	var st heartbeat.Stats
	var d *trace.Trace
	runDisabled := func() error {
		dst, err := once(nil)
		if err != nil {
			return err
		}
		if disabledWall == 0 || dst.Elapsed < disabledWall {
			disabledWall = dst.Elapsed
		}
		return nil
	}
	runEnabled := func() error {
		etr := trace.New(workers, capacity)
		est, err := once(etr)
		if err != nil {
			return err
		}
		if enabledWall == 0 || est.Elapsed < enabledWall {
			// Drain now, not after the loop: the trace duration feeds the
			// utilization denominator and must cover only this run.
			enabledWall, st, d = est.Elapsed, est, etr.Drain()
		}
		return nil
	}
	for r := 0; r < reps; r++ {
		first, second := runDisabled, runEnabled
		if r%2 == 1 {
			first, second = runEnabled, runDisabled
		}
		if err := first(); err != nil {
			return rtResult{}, err
		}
		if err := second(); err != nil {
			return rtResult{}, err
		}
	}

	res := rtResult{
		Name:           name,
		WallSerialNS:   serialWall.Nanoseconds(),
		WallDisabledNS: disabledWall.Nanoseconds(),
		WallEnabledNS:  enabledWall.Nanoseconds(),
		WorkNS:         st.WorkNanos,
		SpanNS:         st.SpanNanos,
		Promotions:     st.Promotions,
		Utilization:    trace.BuildTimeline(d).Utilization(),
		TraceEvents:    len(d.Events),
		TraceDropped:   d.Dropped,
		HeartbeatsSeen: st.Sched.HeartbeatsSeen,
		TasksCreated:   st.Sched.TasksCreated,
	}
	if disabledWall > 0 {
		res.TracerDelta = float64(enabledWall-disabledWall) / float64(disabledWall)
	}
	return res, nil
}

// runBenchRT produces BENCH_rt.json and enforces the overhead gate.
func runBenchRT(out io.Writer, outPath string, workers int, scale float64, reps, capacity int) int {
	doc := benchRTDoc{GeneratedBy: "tpal-trace -bench-rt"}
	doc.Config.Workers = workers
	doc.Config.Scale = scale
	doc.Config.Reps = reps
	doc.Config.Mechanism = "ping-thread"

	for _, name := range rtBenchmarks {
		fmt.Fprintf(out, "measuring %s (scale %g, %d reps)...\n", name, scale, reps)
		res, err := measureRT(name, workers, scale, reps, capacity)
		if err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "  wall %v disabled, %v enabled (delta %+.2f%%), %d promotions, utilization %.3f\n",
			time.Duration(res.WallDisabledNS).Round(time.Microsecond),
			time.Duration(res.WallEnabledNS).Round(time.Microsecond),
			res.TracerDelta*100, res.Promotions, res.Utilization)
		doc.Benchmarks = append(doc.Benchmarks, res)
	}

	kernels, err := machineKernels(scale)
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}
	for _, c := range kernels {
		fmt.Fprintf(out, "measuring machine backend on %s (%d reps)...\n", c.name, reps)
		row, err := measureBackends(c, reps)
		if err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "  %d steps: interp %v, compiled %v (%.2fx); with sanitizer %v vs %v (%.2fx); %d checks hoisted\n",
			row.Steps,
			time.Duration(row.WallInterpNS).Round(time.Microsecond),
			time.Duration(row.WallCompiledNS).Round(time.Microsecond),
			row.Speedup,
			time.Duration(row.WallInterpRaceNS).Round(time.Microsecond),
			time.Duration(row.WallCompiledRaceNS).Round(time.Microsecond),
			row.SpeedupRace, row.ChecksHoisted)
		doc.MachineBackend = append(doc.MachineBackend, row)
	}

	gapsOK := true
	for _, c := range corpus() {
		g, _, err := checkGap(c, 8, capacity)
		if err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "gap check %s: %s(%d), observed max %d: %s\n",
			g.Program, g.Class, g.StaticBound, g.MaxObserved, passFail(g.WithinBound))
		if !g.WithinBound {
			gapsOK = false
		}
		doc.CorpusGaps = append(doc.CorpusGaps, g)
	}

	for _, c := range corpus() {
		o, err := checkOpt(c, 8)
		if err != nil {
			fmt.Fprintln(out, err)
			return 1
		}
		fmt.Fprintf(out, "opt delta %s: %d rewrites, steps %d -> %d (%+.2f%%)\n",
			o.Program, o.Rewrites, o.StepsBefore, o.StepsAfter, o.Delta*100)
		doc.OptDeltas = append(doc.OptDeltas, o)
	}

	doc.OverheadGate.Benchmark = rtBenchmarks[0]
	doc.OverheadGate.Limit = overheadLimit
	doc.OverheadGate.Delta = doc.Benchmarks[0].TracerDelta
	doc.OverheadGate.Pass = doc.Benchmarks[0].TracerDelta <= overheadLimit

	doc.BackendGate.Benchmark = doc.MachineBackend[0].Name
	doc.BackendGate.Floor = backendSpeedupFloor
	doc.BackendGate.Speedup = doc.MachineBackend[0].Speedup
	doc.BackendGate.Pass = doc.BackendGate.Speedup >= backendSpeedupFloor

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(out, err)
		return 1
	}
	fmt.Fprintf(out, "wrote %s\n", outPath)

	if !doc.OverheadGate.Pass {
		fmt.Fprintf(out, "FAIL: tracer delta %+.2f%% on %s exceeds the %.0f%% overhead contract\n",
			doc.OverheadGate.Delta*100, doc.OverheadGate.Benchmark, overheadLimit*100)
		return 1
	}
	if !gapsOK {
		fmt.Fprintln(out, "FAIL: an observed promotion gap exceeds its static bound")
		return 1
	}
	if !doc.BackendGate.Pass {
		fmt.Fprintf(out, "FAIL: compiled-backend speedup %.2fx on %s is below the %.1fx floor\n",
			doc.BackendGate.Speedup, doc.BackendGate.Benchmark, backendSpeedupFloor)
		return 1
	}
	fmt.Fprintf(out, "PASS: tracer delta %+.2f%% within %.0f%%; compiled backend %.2fx on %s; all observed gaps respect their static bounds\n",
		doc.OverheadGate.Delta*100, overheadLimit*100, doc.BackendGate.Speedup, doc.BackendGate.Benchmark)
	return 0
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

func writeChromeFile(path string, d *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
