// Command tpal-tune implements the paper's one-time, per-machine
// heartbeat tuning procedure: sweep ♥ over a range, measure the
// single-core overhead of heartbeat execution relative to serial on a
// calibration workload, and report the smallest ♥ whose overhead stays
// under a target bound (the paper targets a small constant, picking
// ♥ = 100µs for its EPYC test machine).
//
// Usage:
//
//	tpal-tune                 # defaults: 5% bound, plus-reduce calibration
//	tpal-tune -bound 0.03 -mech nautilus -sizes 4000000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tpal/internal/bench"
	"tpal/internal/harness"
	"tpal/internal/heartbeat"
	"tpal/internal/interrupt"
)

func main() {
	var (
		bound = flag.Float64("bound", 0.05, "acceptable promotion+interrupt overhead (fraction over serial)")
		mech  = flag.String("mech", "linux-ping", "mechanism model: linux-ping, linux-papi, nautilus")
		reps  = flag.Int("reps", 3, "repetitions per point (minimum kept)")
		scale = flag.Float64("scale", 1.0, "calibration workload scale")
		name  = flag.String("workload", "plus-reduce-array", "calibration benchmark")
	)
	flag.Parse()

	profile, err := profileFor(*mech)
	if err != nil {
		fatal(err)
	}
	b, err := bench.ByName(*name)
	if err != nil {
		fatal(err)
	}
	b.Setup(*scale)
	b.RunSerial() // warmup + reference output

	serial := time.Duration(0)
	for r := 0; r < *reps; r++ {
		t0 := time.Now()
		b.RunSerial()
		if d := time.Since(t0); serial == 0 || d < serial {
			serial = d
		}
	}
	fmt.Printf("calibration: %s, serial %v, mechanism %s, bound %.1f%%\n\n",
		*name, serial, *mech, *bound*100)
	fmt.Printf("%-12s %-12s %-10s %s\n", "heartbeat", "elapsed", "overhead", "promotions")

	sweep := []time.Duration{
		10 * time.Microsecond, 20 * time.Microsecond, 40 * time.Microsecond,
		60 * time.Microsecond, 80 * time.Microsecond, 100 * time.Microsecond,
		150 * time.Microsecond, 200 * time.Microsecond, 400 * time.Microsecond,
		800 * time.Microsecond,
	}
	chosen := time.Duration(0)
	for _, hb := range sweep {
		var best heartbeat.Stats
		for r := 0; r < *reps; r++ {
			st := heartbeat.Run(heartbeat.Config{
				Workers:   1,
				Heartbeat: hb,
				Mechanism: interrupt.NewVirtual(profile),
			}, func(c *heartbeat.Ctx) { b.RunHeartbeat(c) })
			if r == 0 || st.Elapsed < best.Elapsed {
				best = st
			}
		}
		overhead := best.Elapsed.Seconds()/serial.Seconds() - 1
		mark := ""
		if overhead <= *bound && chosen == 0 {
			chosen = hb
			mark = "  <- smallest within bound"
		}
		fmt.Printf("%-12v %-12v %8.1f%%  %d%s\n", hb, best.Elapsed.Round(time.Microsecond), overhead*100, best.Promotions, mark)
	}
	fmt.Println()
	if chosen == 0 {
		fmt.Println("no heartbeat in the sweep met the bound; the workload may be too small or the host too noisy")
		os.Exit(1)
	}
	fmt.Printf("tuned heartbeat: ♥ = %v\n", chosen)
}

func profileFor(name string) (interrupt.Profile, error) {
	switch harness.MechProfile(name) {
	case harness.MechLinux:
		return interrupt.LinuxPingThread, nil
	case harness.MechPAPI:
		return interrupt.LinuxPAPI, nil
	case harness.MechNautilus:
		return interrupt.Nautilus, nil
	}
	return interrupt.Profile{}, fmt.Errorf("unknown mechanism %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpal-tune:", err)
	os.Exit(1)
}
