// Command tpal-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	tpal-bench -exp fig6              # one figure
//	tpal-bench -exp all               # everything (the default)
//	tpal-bench -exp fig7,fig14 -scale 2 -reps 5 -cores 15
//	tpal-bench -list                  # list experiment ids
//	tpal-bench -bench spmv-random,mandelbrot -exp fig6
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-versus-measured shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tpal/internal/harness"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id(s), comma separated, or 'all'")
		scale  = flag.Float64("scale", 1.0, "input scale multiplier (1.0 = scaled-down defaults)")
		reps   = flag.Int("reps", 3, "repetitions per measurement (minimum kept)")
		cores  = flag.Int("cores", 15, "simulated machine size for at-scale figures")
		benchs = flag.String("bench", "", "comma-separated benchmark subset (default: all)")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := harness.Options{
		Out:   os.Stdout,
		Scale: *scale,
		Reps:  *reps,
		Cores: *cores,
	}
	if *benchs != "" {
		opt.Benchmarks = strings.Split(*benchs, ",")
	}
	session := harness.NewSession(opt)

	var selected []harness.Experiment
	if *exp == "all" {
		selected = harness.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("== %s: %s ==\n\n", e.ID, e.Title)
		e.Run(session)
	}
}
