package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeLifecycle boots the daemon through the run() seam on an
// ephemeral port, pushes one job through the HTTP API, then delivers
// SIGTERM and verifies a clean drain.
func TestServeLifecycle(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "localhost:0", "-workers", "2"}, &stdout, &stderr, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never became ready\nstderr: %s", stderr.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}

	body := `{"tenant":"cli","source":"program p entry main\nblock main [.] {\n  c := a * b\n  halt\n}\n","args":{"a":6,"b":7}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var sub struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d, want 202", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var v struct {
			Status string            `json:"status"`
			Result map[string]string `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode poll: %v", err)
		}
		resp.Body.Close()
		if v.Status == "done" {
			if v.Result["c"] != "42" {
				t.Fatalf("result c = %q, want 42", v.Result["c"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// SIGTERM is delivered process-wide; run()'s signal.Notify picks it
	// up and drains.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("exit code %d, want 0\nstderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM\nstdout: %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "draining") || !strings.Contains(stdout.String(), "drained, bye") {
		t.Errorf("drain messages missing from stdout:\n%s", stdout.String())
	}
}

// TestServeUsage: bad flags exit 2 without starting anything.
func TestServeUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr, nil); code != exitUsage {
		t.Fatalf("exit code %d, want %d", code, exitUsage)
	}
	if code := run([]string{"stray"}, &stdout, &stderr, nil); code != exitUsage {
		t.Fatalf("stray arg: exit code %d, want %d", code, exitUsage)
	}
}
