// Command tpal-serve runs the TPAL job-execution daemon: a multi-tenant
// HTTP service that admits programs through the full static-analysis
// pipeline (verification, promotion liveness, work/span, race
// detection), quotes a step budget from the symbolic work bound, and
// executes admitted jobs on a fixed pool of heartbeat interpreters
// with deficit-round-robin fairness across tenants.
//
// API (see DESIGN.md §10 and internal/serve):
//
//	POST /v1/jobs             submit {source, args, ...}; 202 accepted,
//	                          422 rejected with TP0xx diags, 429 queue full
//	GET  /v1/jobs/{id}        status, result registers, execution stats
//	GET  /v1/jobs/{id}/events live SSE stream: status transitions and,
//	                          for traced jobs, batched tracer events
//	POST /v1/analyze          static report + admission verdict, no execution
//	GET  /healthz             200 serving / 503 draining
//	GET  /metrics             counters, queue depth, latency percentiles
//
// Dispatch is sharded: tenants hash onto -shards independently locked
// DRR queues and executors steal across shards when their own runs
// dry. Results are memoized in a bounded LRU (-result-cache) and
// identical in-flight submissions collapse onto one execution.
// Terminal job records are retained up to -retain-jobs / -job-ttl and
// then evicted (GET on an evicted id is a 404).
//
// SIGINT/SIGTERM triggers a graceful drain: queued jobs are canceled,
// in-flight jobs run to completion (bounded by -drain-timeout, after
// which they are interrupted), then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tpal/internal/serve"
	"tpal/internal/tpal/machine"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point. If ready is non-nil, the bound
// listen address is sent on it once the server is accepting.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("tpal-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "localhost:8334", "listen address")
		workers      = fs.Int("workers", 0, "executor goroutines (0 = GOMAXPROCS)")
		shards       = fs.Int("shards", 0, "queue shards tenants hash onto (0 = min(workers, 16))")
		queueCap     = fs.Int("queue", 256, "admission queue capacity (full queue => 429)")
		resultCache  = fs.Int("result-cache", 4096, "LRU capacity of the content-addressed result store")
		retainJobs   = fs.Int("retain-jobs", 4096, "terminal job records kept before eviction")
		jobTTL       = fs.Duration("job-ttl", 15*time.Minute, "age at which terminal job records are evicted")
		heartbeat    = fs.Int64("heartbeat", 100, "heartbeat period N shared by all executors")
		signalPeriod = fs.Int64("signal-period", 0, "steps per heartbeat signal (0 = N, lockstep)")
		fuelCap      = fs.Int64("fuel-cap", 20_000_000, "hard per-job step ceiling")
		minBudget    = fs.Int64("min-budget", 10_000, "floor for quoted step budgets")
		tripAssume   = fs.Int64("trip-assume", 1024, "assumed trip count for unknown loop bounds in quotes")
		quoteMargin  = fs.Int64("quote-margin", 4, "multiplier applied to the work estimate")
		timeout      = fs.Duration("timeout", 10*time.Second, "default per-job wall-clock deadline")
		maxTimeout   = fs.Duration("max-timeout", 60*time.Second, "ceiling on client-requested deadlines")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		noOpt        = fs.Bool("no-opt", false, "disable the certified optimizer (jobs run and are quoted as submitted)")
		backendName  = fs.String("backend", "interp", "execution backend for admitted jobs: interp or compiled")
	)
	fs.Usage = func() {
		fmt.Fprint(stderr, "usage: tpal-serve [flags]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "tpal-serve: unexpected arguments %q\n", fs.Args())
		fs.Usage()
		return exitUsage
	}

	backend, err := machine.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintf(stderr, "tpal-serve: %v\n", err)
		return exitUsage
	}

	svc := serve.New(serve.Config{
		Workers:        *workers,
		Shards:         *shards,
		QueueCap:       *queueCap,
		ResultCacheCap: *resultCache,
		JobRetention:   *retainJobs,
		JobTTL:         *jobTTL,
		Heartbeat:      *heartbeat,
		SignalPeriod:   *signalPeriod,
		FuelCap:        *fuelCap,
		MinBudget:      *minBudget,
		TripAssume:     *tripAssume,
		QuoteMargin:    *quoteMargin,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,

		DisableOptimizer: *noOpt,
		Backend:          backend,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "tpal-serve: %v\n", err)
		return exitError
	}
	fmt.Fprintf(stdout, "tpal-serve: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "tpal-serve: %v\n", err)
		return exitError
	case sig := <-sigc:
		fmt.Fprintf(stdout, "tpal-serve: %v received, draining\n", sig)
	}

	// Graceful shutdown: stop admitting and let in-flight jobs finish
	// (the drain context interrupts them if they overstay), then close
	// the listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		fmt.Fprintf(stdout, "tpal-serve: forced drain: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "tpal-serve: shutdown: %v\n", err)
		return exitError
	}
	<-errc // Serve has returned http.ErrServerClosed
	fmt.Fprintln(stdout, "tpal-serve: drained, bye")
	return exitOK
}
