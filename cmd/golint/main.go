// Command golint is the repository's own Go style checker: a small
// go/ast pass over the tree that flags patterns gofmt and go vet both
// accept but this codebase does not want. It uses only the standard
// library — no module downloads, no type checking — so it runs in the
// sandboxed CI environment exactly as it runs locally.
//
// Checks:
//
//	boolcompare   comparison against a bool literal (x == true, y != false)
//	selfassign    assigning an expression to itself (x = x)
//	emptybranch   if or else branch with an empty body
//	sprintfconst  fmt.Sprintf/Errorf/Printf-family call whose format
//	              string contains no verb — the call is a costlier
//	              string literal (Errorf is exempt only when it keeps
//	              an error chain, which needs a verb anyway)
//	lenzero       len(x) < 0 or len(x) >= 0: always false/true
//	deferloop     defer lexically inside a for/range body: the calls
//	              pile up until function exit, not loop-iteration exit
//	              (a defer inside a func literal in the loop is fine)
//	shadowerr     a := in a nested block redeclares err while an
//	              enclosing scope holds one, and the outer err is read
//	              again afterwards — that read sees the stale value the
//	              shadowed writes never touched (the common guard idiom
//	              `if err := f(); err != nil` is fine when nothing reads
//	              the outer err later, and a plain `err = ...` rewrite
//	              clears the hazard)
//
// Usage:
//
//	golint ./internal ./cmd       # lint the trees, exit 1 on findings
//
// Test files are linted too; testdata directories are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		args = []string{"."}
	}
	var files []string
	for _, arg := range args {
		err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != arg {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(stderr, "golint: %v\n", err)
			return 2
		}
	}
	sort.Strings(files)

	found := 0
	for _, path := range files {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "golint: %v\n", err)
			return 2
		}
		for _, d := range lintFile(fset, f) {
			fmt.Fprintln(stdout, d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(stdout, "golint: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// lintFile runs every check over one parsed file and returns rendered
// findings in position order.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, check, msg string) {
		out = append(out, fmt.Sprintf("%s: %s: %s", fset.Position(pos), check, msg))
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkBoolCompare(fset, n, report)
			checkLenZero(fset, n, report)
		case *ast.AssignStmt:
			checkSelfAssign(fset, n, report)
		case *ast.IfStmt:
			checkEmptyBranch(n, report)
		case *ast.CallExpr:
			checkSprintfConst(n, report)
		case *ast.ForStmt:
			checkDeferLoop(n.Body, report)
		case *ast.RangeStmt:
			checkDeferLoop(n.Body, report)
		case *ast.FuncDecl:
			checkShadowErr(n.Type, n.Body, report)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func isBoolLit(e ast.Expr) (bool, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false, false
	}
	switch id.Name {
	case "true":
		return true, true
	case "false":
		return false, true
	}
	return false, false
}

// checkBoolCompare flags x == true / x != false style comparisons: the
// bool expression already is the condition.
func checkBoolCompare(fset *token.FileSet, n *ast.BinaryExpr, report func(token.Pos, string, string)) {
	if n.Op != token.EQL && n.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{n.X, n.Y} {
		if _, ok := isBoolLit(side); ok {
			report(n.Pos(), "boolcompare",
				fmt.Sprintf("comparison with bool literal %s; use the expression (or its negation) directly", render(fset, side)))
			return
		}
	}
}

// checkLenZero flags len(x) < 0 and len(x) >= 0, which are always
// false and always true: len never goes negative.
func checkLenZero(fset *token.FileSet, n *ast.BinaryExpr, report func(token.Pos, string, string)) {
	if n.Op != token.LSS && n.Op != token.GEQ {
		return
	}
	call, ok := n.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "len" {
		return
	}
	if lit, ok := n.Y.(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value == "0" {
		report(n.Pos(), "lenzero",
			fmt.Sprintf("len(%s) %s 0 is always %v", render(fset, call.Args[0]), n.Op, n.Op == token.GEQ))
	}
}

// checkSelfAssign flags x = x (any position in a multi-assign).
func checkSelfAssign(fset *token.FileSet, n *ast.AssignStmt, report func(token.Pos, string, string)) {
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		l, r := render(fset, n.Lhs[i]), render(fset, n.Rhs[i])
		// Only flag plain identifier/selector chains: an index or call
		// on either side can have effects worth keeping.
		if l == r && isPure(n.Lhs[i]) {
			report(n.Pos(), "selfassign", fmt.Sprintf("%s is assigned to itself", l))
		}
	}
}

func isPure(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPure(e.X)
	}
	return false
}

// checkEmptyBranch flags if/else branches whose body is empty: either
// dead scaffolding or an inverted condition waiting to happen.
func checkEmptyBranch(n *ast.IfStmt, report func(token.Pos, string, string)) {
	if n.Body != nil && len(n.Body.List) == 0 {
		report(n.Pos(), "emptybranch", "if branch has an empty body")
	}
	if blk, ok := n.Else.(*ast.BlockStmt); ok && len(blk.List) == 0 {
		report(n.Else.Pos(), "emptybranch", "else branch has an empty body")
	}
}

// formatCalls maps fmt functions to the index of their format argument.
var formatCalls = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0,
	"Fprintf": 1, "Fscanf": 1, "Sscanf": 1,
}

// checkSprintfConst flags fmt format calls whose format string is a
// literal with no verbs and no escapes: the plain-string sibling
// (Sprint, Print, errors.New, WriteString) says the same thing without
// a scan of the format string.
func checkSprintfConst(n *ast.CallExpr, report func(token.Pos, string, string)) {
	sel, ok := n.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" {
		return
	}
	argIx, ok := formatCalls[sel.Sel.Name]
	if !ok || len(n.Args) <= argIx {
		return
	}
	lit, ok := n.Args[argIx].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || len(n.Args) > argIx+1 {
		return
	}
	val, err := strconv.Unquote(lit.Value)
	if err != nil || strings.ContainsAny(val, "%") {
		return
	}
	report(n.Pos(), "sprintfconst",
		fmt.Sprintf("fmt.%s with a constant format and no arguments; use the non-formatting variant", sel.Sel.Name))
}

// checkDeferLoop flags defer statements lexically inside a loop body:
// deferred calls run at function exit, so each iteration adds one more
// pending call — a resource leak when the loop is long. A defer inside
// a func literal is scoped to that literal and fine; a nested loop is
// checked by its own visit, not twice.
func checkDeferLoop(body *ast.BlockStmt, report func(token.Pos, string, string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.DeferStmt:
			report(n.Pos(), "deferloop",
				"defer inside a loop runs at function exit, not iteration exit; the pending calls accumulate")
		}
		return true
	})
}

// checkShadowErr flags a := that redeclares err in a nested block when
// the outer err is read again after the block. The shadow itself is
// legal and often deliberate (the `if err := f(); err != nil` guard
// idiom), so a report fires only when a later statement reads the
// generation of err that was hidden — that read sees a stale value the
// shadowed writes never reached. A plain `err = ...` store to the
// outer err between shadow and read refreshes the value and clears the
// pending report.
//
// The walk is purely lexical: each scope tracks the "generation" of
// the err currently visible (0 = none), a := or var that hides an
// enclosing generation bumps it, and pending shadows are keyed by the
// generation they hid. Reads flush — and writes kill — only pending
// entries of the generation the reading scope resolves to, so reads of
// the shadow itself never trigger the outer report.
func checkShadowErr(typ *ast.FuncType, body *ast.BlockStmt, report func(token.Pos, string, string)) {
	if body == nil {
		return
	}
	st := &shadowState{report: report}
	gen := 0
	declared := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				if name.Name == "err" && gen == 0 {
					gen = st.fresh()
				}
			}
		}
	}
	declared(typ.Params)
	declared(typ.Results)
	st.resultGen = 0
	if gen != 0 {
		st.resultGen = gen
	}
	if typ.Results != nil {
		// Only a named *result* makes a naked return read err.
		for _, field := range typ.Results.List {
			for _, name := range field.Names {
				if name.Name == "err" {
					st.namedResult = true
				}
			}
		}
	}
	st.scope(body.List, gen)
}

// errShadow is one := (or var) that hid generation gen of err and has
// not yet been proved harmful or harmless.
type errShadow struct {
	pos token.Pos
	gen int
}

type shadowState struct {
	pending     []errShadow
	counter     int  // generation allocator; IDs are unique per function
	resultGen   int  // generation of the named result err, if any
	namedResult bool // function has a named result called err
	report      func(token.Pos, string, string)
}

// fresh allocates a generation ID. IDs are unique across the whole
// function so sibling scopes that each declare their own err never
// collide: a read in one case clause cannot flush a shadow pending in
// another.
func (st *shadowState) fresh() int {
	st.counter++
	return st.counter
}

// flush reports and drops every pending shadow of generation gen: the
// caller just saw a read of that generation, so the stale value is
// observable.
func (st *shadowState) flush(gen int) {
	kept := st.pending[:0]
	for _, p := range st.pending {
		if p.gen == gen {
			st.report(p.pos, "shadowerr",
				"err shadowed by := here is read again from the outer scope later; the outer err still holds its pre-shadow value")
		} else {
			kept = append(kept, p)
		}
	}
	st.pending = kept
}

// kill drops pending shadows of generation gen without reporting: the
// outer err was just rewritten, so no stale read can happen.
func (st *shadowState) kill(gen int) {
	kept := st.pending[:0]
	for _, p := range st.pending {
		if p.gen != gen {
			kept = append(kept, p)
		}
	}
	st.pending = kept
}

// reads flushes pending shadows of gen if the node mentions the ident
// err anywhere. Func literals are scanned as child scopes of the same
// generation (closures capture err by reference).
func (st *shadowState) reads(n ast.Node, gen int) {
	if n == nil || gen == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			g := gen
			for _, field := range m.Type.Params.List {
				for _, name := range field.Names {
					if name.Name == "err" {
						g = st.fresh() // literal's own err; body reads are private
					}
				}
			}
			st.scope(m.Body.List, g)
			return false
		case *ast.Ident:
			if m.Name == "err" {
				st.flush(gen)
			}
		}
		return true
	})
}

// scope walks one block's statements with the visible err generation.
func (st *shadowState) scope(stmts []ast.Stmt, gen int) {
	local := false
	for _, s := range stmts {
		gen, local = st.stmt(s, gen, local)
	}
}

// stmt processes one statement where the visible err has generation gen
// (0 = not in scope) and local says the current scope itself declared
// that generation; it returns the updated pair for the statements that
// follow in the same scope.
func (st *shadowState) stmt(s ast.Stmt, gen int, local bool) (int, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			st.reads(r, gen)
		}
		writesErr := false
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if id.Name == "err" {
					writesErr = true
				}
			} else {
				st.reads(l, gen) // index/selector operands are reads
			}
		}
		if !writesErr {
			return gen, local
		}
		if s.Tok == token.DEFINE && !local {
			if gen > 0 {
				st.pending = append(st.pending, errShadow{s.Pos(), gen})
			}
			return st.fresh(), true
		}
		// Plain store (or := reusing the scope's own err): the visible
		// err is refreshed, so shadows that hid it are now harmless.
		st.kill(gen)
		return gen, local
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return gen, local
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				st.reads(v, gen)
			}
			for _, name := range vs.Names {
				if name.Name == "err" {
					// var err in a nested scope also shadows, but the
					// spelling is explicit enough not to report; it still
					// bumps the generation so resolution stays right.
					gen, local = st.fresh(), true
				}
			}
		}
		return gen, local
	case *ast.ReturnStmt:
		if len(s.Results) == 0 && st.namedResult {
			st.flush(st.resultGen) // naked return reads the named result err
			return gen, local
		}
		for _, r := range s.Results {
			st.reads(r, gen)
		}
		return gen, local
	case *ast.IfStmt:
		g, l := gen, false
		if s.Init != nil {
			g, l = st.stmt(s.Init, g, l)
		}
		st.reads(s.Cond, g)
		st.scope(s.Body.List, g)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			st.scope(e.List, g)
		case ast.Stmt:
			st.stmt(e, g, l)
		}
		return gen, local
	case *ast.ForStmt:
		g, l := gen, false
		if s.Init != nil {
			g, l = st.stmt(s.Init, g, l)
		}
		st.reads(s.Cond, g)
		if s.Post != nil {
			st.stmt(s.Post, g, l)
		}
		st.scope(s.Body.List, g)
		return gen, local
	case *ast.RangeStmt:
		st.reads(s.X, gen)
		g := gen
		if s.Tok == token.DEFINE {
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name == "err" && g > 0 {
					st.pending = append(st.pending, errShadow{s.Pos(), g})
					g = st.fresh()
				}
			}
		}
		st.scope(s.Body.List, g)
		return gen, local
	case *ast.SwitchStmt:
		g, l := gen, false
		if s.Init != nil {
			g, l = st.stmt(s.Init, g, l)
		}
		_ = l
		st.reads(s.Tag, g)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					st.reads(e, g)
				}
				st.scope(cc.Body, g)
			}
		}
		return gen, local
	case *ast.TypeSwitchStmt:
		g, l := gen, false
		if s.Init != nil {
			g, l = st.stmt(s.Init, g, l)
		}
		_ = l
		st.reads(s.Assign, g)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				st.scope(cc.Body, g)
			}
		}
		return gen, local
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				g, l := gen, false
				if cc.Comm != nil {
					g, l = st.stmt(cc.Comm, g, l)
				}
				_ = l
				st.scope(cc.Body, g)
			}
		}
		return gen, local
	case *ast.BlockStmt:
		st.scope(s.List, gen)
		return gen, local
	case *ast.LabeledStmt:
		return st.stmt(s.Stmt, gen, local)
	default:
		st.reads(s, gen)
		return gen, local
	}
}

// render prints an expression compactly for a finding message.
func render(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "?"
	}
	return sb.String()
}
