// Command golint is the repository's own Go style checker: a small
// go/ast pass over the tree that flags patterns gofmt and go vet both
// accept but this codebase does not want. It uses only the standard
// library — no module downloads, no type checking — so it runs in the
// sandboxed CI environment exactly as it runs locally.
//
// Checks:
//
//	boolcompare   comparison against a bool literal (x == true, y != false)
//	selfassign    assigning an expression to itself (x = x)
//	emptybranch   if or else branch with an empty body
//	sprintfconst  fmt.Sprintf/Errorf/Printf-family call whose format
//	              string contains no verb — the call is a costlier
//	              string literal (Errorf is exempt only when it keeps
//	              an error chain, which needs a verb anyway)
//	lenzero       len(x) < 0 or len(x) >= 0: always false/true
//
// Usage:
//
//	golint ./internal ./cmd       # lint the trees, exit 1 on findings
//
// Test files are linted too; testdata directories are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		args = []string{"."}
	}
	var files []string
	for _, arg := range args {
		err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != arg {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(stderr, "golint: %v\n", err)
			return 2
		}
	}
	sort.Strings(files)

	found := 0
	for _, path := range files {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "golint: %v\n", err)
			return 2
		}
		for _, d := range lintFile(fset, f) {
			fmt.Fprintln(stdout, d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(stdout, "golint: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// lintFile runs every check over one parsed file and returns rendered
// findings in position order.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, check, msg string) {
		out = append(out, fmt.Sprintf("%s: %s: %s", fset.Position(pos), check, msg))
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkBoolCompare(fset, n, report)
			checkLenZero(fset, n, report)
		case *ast.AssignStmt:
			checkSelfAssign(fset, n, report)
		case *ast.IfStmt:
			checkEmptyBranch(n, report)
		case *ast.CallExpr:
			checkSprintfConst(n, report)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func isBoolLit(e ast.Expr) (bool, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false, false
	}
	switch id.Name {
	case "true":
		return true, true
	case "false":
		return false, true
	}
	return false, false
}

// checkBoolCompare flags x == true / x != false style comparisons: the
// bool expression already is the condition.
func checkBoolCompare(fset *token.FileSet, n *ast.BinaryExpr, report func(token.Pos, string, string)) {
	if n.Op != token.EQL && n.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{n.X, n.Y} {
		if _, ok := isBoolLit(side); ok {
			report(n.Pos(), "boolcompare",
				fmt.Sprintf("comparison with bool literal %s; use the expression (or its negation) directly", render(fset, side)))
			return
		}
	}
}

// checkLenZero flags len(x) < 0 and len(x) >= 0, which are always
// false and always true: len never goes negative.
func checkLenZero(fset *token.FileSet, n *ast.BinaryExpr, report func(token.Pos, string, string)) {
	if n.Op != token.LSS && n.Op != token.GEQ {
		return
	}
	call, ok := n.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "len" {
		return
	}
	if lit, ok := n.Y.(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value == "0" {
		report(n.Pos(), "lenzero",
			fmt.Sprintf("len(%s) %s 0 is always %v", render(fset, call.Args[0]), n.Op, n.Op == token.GEQ))
	}
}

// checkSelfAssign flags x = x (any position in a multi-assign).
func checkSelfAssign(fset *token.FileSet, n *ast.AssignStmt, report func(token.Pos, string, string)) {
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		l, r := render(fset, n.Lhs[i]), render(fset, n.Rhs[i])
		// Only flag plain identifier/selector chains: an index or call
		// on either side can have effects worth keeping.
		if l == r && isPure(n.Lhs[i]) {
			report(n.Pos(), "selfassign", fmt.Sprintf("%s is assigned to itself", l))
		}
	}
}

func isPure(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPure(e.X)
	}
	return false
}

// checkEmptyBranch flags if/else branches whose body is empty: either
// dead scaffolding or an inverted condition waiting to happen.
func checkEmptyBranch(n *ast.IfStmt, report func(token.Pos, string, string)) {
	if n.Body != nil && len(n.Body.List) == 0 {
		report(n.Pos(), "emptybranch", "if branch has an empty body")
	}
	if blk, ok := n.Else.(*ast.BlockStmt); ok && len(blk.List) == 0 {
		report(n.Else.Pos(), "emptybranch", "else branch has an empty body")
	}
}

// formatCalls maps fmt functions to the index of their format argument.
var formatCalls = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0,
	"Fprintf": 1, "Fscanf": 1, "Sscanf": 1,
}

// checkSprintfConst flags fmt format calls whose format string is a
// literal with no verbs and no escapes: the plain-string sibling
// (Sprint, Print, errors.New, WriteString) says the same thing without
// a scan of the format string.
func checkSprintfConst(n *ast.CallExpr, report func(token.Pos, string, string)) {
	sel, ok := n.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" {
		return
	}
	argIx, ok := formatCalls[sel.Sel.Name]
	if !ok || len(n.Args) <= argIx {
		return
	}
	lit, ok := n.Args[argIx].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || len(n.Args) > argIx+1 {
		return
	}
	val, err := strconv.Unquote(lit.Value)
	if err != nil || strings.ContainsAny(val, "%") {
		return
	}
	report(n.Pos(), "sprintfconst",
		fmt.Sprintf("fmt.%s with a constant format and no arguments; use the non-formatting variant", sel.Sel.Name))
}

// render prints an expression compactly for a finding message.
func render(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "?"
	}
	return sb.String()
}
