package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSrc(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return lintFile(fset, f)
}

func TestChecks(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of exactly one finding; "" = clean
	}{
		{"boolcompare-eq", `package x
func f(b bool) bool { return b == true }`, "boolcompare"},
		{"boolcompare-neq", `package x
func f(b bool) bool { return false != b }`, "boolcompare"},
		{"boolcompare-clean", `package x
func f(b, c bool) bool { return b == c }`, ""},
		{"selfassign", `package x
func f(a int) { a = a }`, "selfassign"},
		{"selfassign-field", `package x
type t struct{ n int }
func f(v t) { v.n = v.n }`, "selfassign"},
		{"selfassign-swap-clean", `package x
func f(a, b int) (int, int) { a, b = b, a; return a, b }`, ""},
		{"selfassign-index-clean", `package x
func f(a []int, i func() int) { a[i()] = a[i()] }`, ""},
		{"emptybranch-if", `package x
func f(b bool) { if b { } }`, "emptybranch"},
		{"emptybranch-else", `package x
func f(b bool) { if b { _ = b } else { } }`, "emptybranch"},
		{"sprintfconst", `package x
import "fmt"
func f() string { return fmt.Sprintf("hello") }`, "sprintfconst"},
		{"sprintf-verb-clean", `package x
import "fmt"
func f(n int) string { return fmt.Sprintf("n=%d", n) }`, ""},
		{"lenzero", `package x
func f(a []int) bool { return len(a) >= 0 }`, "lenzero"},
		{"lenzero-clean", `package x
func f(a []int) bool { return len(a) > 0 }`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lintSrc(t, tc.src)
			if tc.want == "" {
				if len(got) != 0 {
					t.Fatalf("want clean, got %v", got)
				}
				return
			}
			if len(got) != 1 || !strings.Contains(got[0], tc.want) {
				t.Fatalf("want one %q finding, got %v", tc.want, got)
			}
		})
	}
}
