package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSrc(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return lintFile(fset, f)
}

func TestChecks(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of exactly one finding; "" = clean
	}{
		{"boolcompare-eq", `package x
func f(b bool) bool { return b == true }`, "boolcompare"},
		{"boolcompare-neq", `package x
func f(b bool) bool { return false != b }`, "boolcompare"},
		{"boolcompare-clean", `package x
func f(b, c bool) bool { return b == c }`, ""},
		{"selfassign", `package x
func f(a int) { a = a }`, "selfassign"},
		{"selfassign-field", `package x
type t struct{ n int }
func f(v t) { v.n = v.n }`, "selfassign"},
		{"selfassign-swap-clean", `package x
func f(a, b int) (int, int) { a, b = b, a; return a, b }`, ""},
		{"selfassign-index-clean", `package x
func f(a []int, i func() int) { a[i()] = a[i()] }`, ""},
		{"emptybranch-if", `package x
func f(b bool) { if b { } }`, "emptybranch"},
		{"emptybranch-else", `package x
func f(b bool) { if b { _ = b } else { } }`, "emptybranch"},
		{"sprintfconst", `package x
import "fmt"
func f() string { return fmt.Sprintf("hello") }`, "sprintfconst"},
		{"sprintf-verb-clean", `package x
import "fmt"
func f(n int) string { return fmt.Sprintf("n=%d", n) }`, ""},
		{"lenzero", `package x
func f(a []int) bool { return len(a) >= 0 }`, "lenzero"},
		{"lenzero-clean", `package x
func f(a []int) bool { return len(a) > 0 }`, ""},
		{"deferloop-for", `package x
func f(fs []func()) {
	for i := 0; i < len(fs); i++ {
		defer fs[i]()
	}
}`, "deferloop"},
		{"deferloop-range", `package x
func f(fs []func()) {
	for _, g := range fs {
		defer g()
	}
}`, "deferloop"},
		{"deferloop-funclit-clean", `package x
func f(fs []func()) {
	for _, g := range fs {
		func() { defer g() }()
	}
}`, ""},
		{"deferloop-outside-clean", `package x
func f(g func()) {
	defer g()
	for range make([]int, 3) {
	}
}`, ""},
		{"shadowerr-stale-read", `package x
func open() (int, error) { return 0, nil }
func f() error {
	v, err := open()
	if err != nil {
		return err
	}
	if v > 0 {
		w, err := open()
		_ = w
		_ = err
	}
	return err
}`, "shadowerr"},
		{"shadowerr-naked-return", `package x
func open() (int, error) { return 0, nil }
func f() (err error) {
	if true {
		v, err := open()
		_ = v
		_ = err
	}
	return
}`, "shadowerr"},
		{"shadowerr-guard-clean", `package x
func open() (int, error) { return 0, nil }
func use(int) error { return nil }
func f() error {
	v, err := open()
	if err != nil {
		return err
	}
	if err := use(v); err != nil {
		return err
	}
	return nil
}`, ""},
		{"shadowerr-rewrite-clean", `package x
func open() (int, error) { return 0, nil }
func use(int) error { return nil }
func f() error {
	v, err := open()
	if err != nil {
		return err
	}
	if v > 0 {
		w, err := open()
		_ = w
		_ = err
	}
	err = use(v)
	return err
}`, ""},
		{"shadowerr-sibling-cases-clean", `package x
func open() (int, error) { return 0, nil }
func use2(int) error { return nil }
func f(k int) int {
	switch k {
	case 0:
		v, err := open()
		if err != nil {
			return 1
		}
		if err := use2(v); err != nil {
			return 1
		}
	case 1:
		v, err := open()
		if err != nil {
			return 2
		}
		_ = v
	}
	return 0
}`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lintSrc(t, tc.src)
			if tc.want == "" {
				if len(got) != 0 {
					t.Fatalf("want clean, got %v", got)
				}
				return
			}
			if len(got) != 1 || !strings.Contains(got[0], tc.want) {
				t.Fatalf("want one %q finding, got %v", tc.want, got)
			}
		})
	}
}
