package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runTool drives the tool through its testable seam and returns the
// exit code plus captured stdout and stderr.
func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestRaceExamplesGolden pins the -race -json contract on the example
// pair under examples/races: the racy program carries exactly the
// TP060 write/write diagnostic, its race-free twin is clean, and the
// run exits non-zero because an Error-severity diagnostic is present.
func TestRaceExamplesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/races.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir("../..")
	code, out, errOut := runTool(t,
		"-race", "-json",
		"examples/races/racy.tpal", "examples/races/racefree.tpal")
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (racy.tpal carries an Error diag); stderr: %s", code, errOut)
	}
	if out != string(golden) {
		t.Errorf("-race -json output diverged from testdata/races.golden.json:\n--- got ---\n%s\n--- want ---\n%s", out, golden)
	}
}

// TestJSONExitCodes is the regression test for the -json exit-code
// contract: Error diags fail the run even in JSON mode, warnings do
// not unless -Werror, and clean programs exit zero.
func TestJSONExitCodes(t *testing.T) {
	t.Chdir("../..")
	racy := "examples/races/racy.tpal"
	clean := "examples/races/racefree.tpal"

	// A warning-only input: the two branches write through pointers the
	// abstraction cannot separate, which is TP065 (Warning), not TP060.
	warnSrc := `
program warn-alias entry main

block main [.] {
  sp := snew
  salloc sp, 2
  t := snew
  salloc t, 2
  n := 0
  if-jump n, meet
  t := sp
  jump meet
}

block meet [.] {
  jr := jralloc after
  fork jr, body
  mem[sp + 0] := 1
  join jr
}

block body [.] {
  mem[t + 0] := 2
  join jr
}

block after [jtppt assoc-comm; {}; comb] {
  halt
}

block comb [.] {
  join jr
}
`
	warn := filepath.Join(t.TempDir(), "warn.tpal")
	if err := os.WriteFile(warn, []byte(warnSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"error diag fails json run", []string{"-race", "-json", racy}, 1},
		{"error diag fails plain run", []string{"-race", racy}, 1},
		{"clean json run passes", []string{"-race", "-json", clean}, 0},
		{"race off hides the race", []string{"-json", racy}, 0},
		{"warning passes json run", []string{"-race", "-json", warn}, 0},
		{"warning fails under -Werror", []string{"-race", "-json", "-Werror", warn}, 1},
		{"missing file is a usage error", []string{"-json", "no-such-file.tpal"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := runTool(t, tc.args...)
			if code != tc.want {
				t.Errorf("args %v: exit code = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, code, tc.want, out, errOut)
			}
			if strings.Contains(strings.Join(tc.args, " "), "-json") && tc.want != 2 && !strings.HasPrefix(out, "[") {
				t.Errorf("args %v: -json run did not emit a JSON array:\n%s", tc.args, out)
			}
		})
	}
}

// TestCorpusCleanWithRace: the no-argument corpus run stays clean with
// the interference pass enabled — the tool-level view of the corpus
// race-freedom claim.
func TestCorpusCleanWithRace(t *testing.T) {
	code, out, errOut := runTool(t, "-race", "-Werror")
	if code != 0 {
		t.Fatalf("corpus lint with -race -Werror failed (exit %d)\nstdout: %s\nstderr: %s", code, out, errOut)
	}
}

// TestAutoparReport covers the -autopar read-only mode: minipar files
// get a per-site verdict table prefixed with the path, .tpal files are
// silently skipped by the reporter, and -autopar -json is rejected as
// a usage error.
func TestAutoparReport(t *testing.T) {
	t.Chdir("../..")
	code, out, errOut := runTool(t, "-autopar", "examples/autopar")
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	for _, want := range []string{
		"examples/autopar/reduce.mp: autopar:",
		"parallelized",
		"blocked TP071",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -autopar report:\n%s", want, out)
		}
	}
	if code, _, _ := runTool(t, "-autopar", "-json", "examples/autopar"); code != 2 {
		t.Errorf("-autopar -json exit code = %d, want 2", code)
	}
}

// TestTripsExamplesGolden pins the -trips contract on the example pair
// under examples/trips: the bounded nest gets fully numeric work/span
// with per-loop bounds, the divergent program carries TP090 (an
// Error, so the run exits 1) and its trip renders as "divergent".
func TestTripsExamplesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/trips.golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir("../..")
	code, out, errOut := runTool(t,
		"-trips",
		"examples/trips/bounded.tpal", "examples/trips/divergent.tpal")
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (divergent.tpal carries TP090); stderr: %s", code, errOut)
	}
	if out != string(golden) {
		t.Errorf("-trips output diverged from testdata/trips.golden.txt:\n--- got ---\n%s\n--- want ---\n%s", out, golden)
	}
}
