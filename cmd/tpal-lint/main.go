// Command tpal-lint runs the static TPAL analyses over programs and
// reports diagnostics plus the scheduling facts the verifier proves:
// the static promotion-latency bound, the loop forest with per-loop
// latency classes, and symbolic work/span bounds. It checks TPAL
// assembly files (.tpal), minipar programs (.mp, verified after
// compilation to TPAL), directories (linted recursively for both
// extensions), and — with no arguments — the built-in corpus (prod,
// pow, fib).
//
// Usage:
//
//	tpal-lint                         # lint the built-in corpus
//	tpal-lint program.tpal            # lint an assembly file
//	tpal-lint ./progs ./more          # lint every .tpal/.mp file under the trees
//	tpal-lint -entry a,b program.tpal # assume a and b initialized at entry
//	tpal-lint -Werror program.mp      # warnings fail the run too
//	tpal-lint -v *.tpal               # report clean files as well
//	tpal-lint -latency program.tpal   # print the promotion-latency report
//	tpal-lint -trips program.tpal     # print inferred trip bounds and numeric work/span
//	tpal-lint -race program.tpal      # also run the interference (race) pass
//	tpal-lint -json ./progs           # machine-readable report on stdout
//	tpal-lint -autopar ./progs        # what would the autopar pass do (read-only)
//	tpal-lint -opt program.tpal       # per-pass certified-optimizer report
//
// Exit status: 0 when every program is clean (warnings allowed unless
// -Werror), 1 when any program has diagnostics that fail the run —
// including on -json runs — and 2 on usage or load errors. A file that
// fails to load no longer aborts the run: the failure is reported, the
// remaining files are still linted, and the exit status is 2 at the
// end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tpal/internal/minipar"
	"tpal/internal/minipar/autopar"
	"tpal/internal/tpal"
	"tpal/internal/tpal/analysis"
	"tpal/internal/tpal/asm"
	"tpal/internal/tpal/opt"
	"tpal/internal/tpal/programs"
)

// corpusEntryRegs mirrors the harness wrappers' initial register files.
var corpusEntryRegs = map[string][]tpal.Reg{
	"prod": {"a", "b"},
	"pow":  {"d", "e"},
	"fib":  {"n"},
}

// jsonDiag is one diagnostic in -json output. The field set is part of
// the tool contract, like the TP0xx codes themselves.
type jsonDiag struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Block    string `json:"block"`
	Instr    int    `json:"instr"`
	Msg      string `json:"msg"`
}

// jsonLoop is one loop of the forest in -json output.
type jsonLoop struct {
	Header  string   `json:"header"`
	Depth   int      `json:"depth"`
	Blocks  []string `json:"blocks"`
	Latency string   `json:"latency"`
	Work    string   `json:"work"`
	Span    string   `json:"span"`
	// Trip is the phase-7 inferred bound on the header's entries per
	// pass of the enclosing region: an exact count, an interval
	// "[lo,hi]", "divergent", or "unknown".
	Trip string `json:"trip"`
}

// jsonReport is one linted program in -json output.
type jsonReport struct {
	Name         string     `json:"name"`
	Blocks       int        `json:"blocks"`
	Diags        []jsonDiag `json:"diags"`
	LatencyClass string     `json:"latency_class"`
	LatencyBound int64      `json:"latency_bound"`
	Loops        []jsonLoop `json:"loops"`
	Work         string     `json:"work"`
	Span         string     `json:"span"`
	// NumWork and NumSpan are the work/span bounds with every inferred
	// trip count substituted; fully numeric when every loop is bounded.
	NumWork string `json:"num_work"`
	NumSpan string `json:"num_span"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool behind a testable seam: it parses flags from
// args, writes reports to stdout and failures to stderr, and returns
// the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tpal-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		entry    = fs.String("entry", "", "comma-separated registers assumed initialized at entry")
		werror   = fs.Bool("Werror", false, "treat warnings as errors")
		verbose  = fs.Bool("v", false, "also report programs that verify clean")
		latency  = fs.Bool("latency", false, "print the per-program promotion-latency and cost report")
		trips    = fs.Bool("trips", false, "print the inferred loop trip bounds and numeric work/span")
		races    = fs.Bool("race", false, "run the static interference (determinacy-race) pass")
		jsonMode = fs.Bool("json", false, "emit one JSON report per program on stdout")
		autoPar  = fs.Bool("autopar", false, "report what the auto-parallelizing pass would do to each minipar program (read-only)")
		optMode  = fs.Bool("opt", false, "run the certified optimizer over each program and print the per-pass report")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *autoPar && *jsonMode {
		fmt.Fprintln(stderr, "tpal-lint: -autopar and -json cannot be combined")
		return 2
	}
	if *optMode && *jsonMode {
		fmt.Fprintln(stderr, "tpal-lint: -opt and -json cannot be combined")
		return 2
	}

	var entryRegs []tpal.Reg
	if *entry != "" {
		for _, name := range strings.Split(*entry, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				fmt.Fprintln(stderr, "tpal-lint: empty register name in -entry")
				return 2
			}
			entryRegs = append(entryRegs, tpal.Reg(name))
		}
	}

	failed := false
	var reports []jsonReport
	lint := func(name string, p *tpal.Program, regs []tpal.Reg) {
		r := analysis.Analyze(p, analysis.Options{EntryRegs: regs, Races: *races})
		if *jsonMode {
			reports = append(reports, toJSON(name, p, r))
		} else {
			for _, d := range r.Diags {
				fmt.Fprintf(stdout, "%s: %s\n", name, d)
			}
		}
		if analysis.HasErrors(r.Diags) || (*werror && len(r.Diags) > 0) {
			failed = true
		} else if *verbose && !*jsonMode {
			fmt.Fprintf(stdout, "%s: ok (%d blocks)\n", name, len(p.Blocks))
		}
		if *latency && !*jsonMode {
			printLatency(stdout, name, r)
		}
		if *trips && !*jsonMode {
			printTrips(stdout, name, r)
		}
		if *optMode {
			reportOpt(stdout, name, p, r, regs)
		}
	}

	if fs.NArg() == 0 {
		names := make([]string, 0, len(programs.All()))
		for name := range programs.All() {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			regs := entryRegs
			if regs == nil {
				regs = corpusEntryRegs[name]
			}
			lint(name, programs.All()[name], regs)
		}
	} else {
		paths, err := expandArgs(fs.Args())
		if err != nil {
			fmt.Fprintf(stderr, "tpal-lint: %v\n", err)
			return 2
		}
		loadFailed := false
		for _, path := range paths {
			p, params, err := load(path)
			if err != nil {
				// Report and keep going: one unparsable file must not
				// hide the diagnostics of every file after it.
				fmt.Fprintf(stderr, "tpal-lint: %s: %v\n", path, err)
				loadFailed = true
				continue
			}
			regs := entryRegs
			if regs == nil {
				regs = params
			}
			lint(path, p, regs)
			if *autoPar && strings.HasSuffix(path, ".mp") {
				if !reportAutopar(stdout, path) {
					failed = true
				}
			}
		}
		if loadFailed {
			// Load failures dominate diagnostic failures: the run did not
			// even see the whole input, which is the stronger complaint.
			if *jsonMode {
				enc := json.NewEncoder(stdout)
				enc.SetIndent("", "  ")
				_ = enc.Encode(reports) // partial report; the exit code already says so
			}
			return 2
		}
	}

	if *jsonMode {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(stderr, "tpal-lint: %v\n", err)
			return 2
		}
	}
	if failed {
		return 1
	}
	return 0
}

// reportOpt runs the certified optimizer over one program and prints
// its per-pass report, each line prefixed with the program name. A
// program the verifier rejects is skipped — the optimizer only accepts
// verified inputs — without failing the run beyond the diagnostics the
// lint pass already charged it with.
func reportOpt(w io.Writer, name string, p *tpal.Program, r *analysis.Report, regs []tpal.Reg) {
	if analysis.HasErrors(r.Diags) {
		fmt.Fprintf(w, "%s: opt: skipped (the verifier rejected the program)\n", name)
		return
	}
	res, err := opt.Optimize(p, opt.Options{EntryRegs: regs})
	if err != nil {
		fmt.Fprintf(w, "%s: opt: %v\n", name, err)
		return
	}
	for _, line := range strings.Split(strings.TrimRight(res.Table(), "\n"), "\n") {
		fmt.Fprintf(w, "%s: opt: %s\n", name, line)
	}
}

// reportAutopar prints what the auto-parallelizing pass would do to one
// minipar file: the per-site verdict table, without writing anything.
// Returns false when the program cannot even enter the pass (it is not
// certification-clean), which fails the run.
func reportAutopar(w io.Writer, path string) bool {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(w, "%s: autopar: %v\n", path, err)
		return false
	}
	res, err := autopar.TransformSource(string(src), autopar.Options{})
	if err != nil {
		fmt.Fprintf(w, "%s: autopar: %v\n", path, err)
		return false
	}
	if len(res.Sites) == 0 {
		fmt.Fprintf(w, "%s: autopar: no candidate sites\n", path)
		return true
	}
	for _, line := range strings.Split(strings.TrimRight(res.Table(false), "\n"), "\n") {
		fmt.Fprintf(w, "%s: autopar: %s\n", path, line)
	}
	return true
}

// printTrips renders the trip report for one program: the numeric
// work/span bounds (fully numeric when every loop is bounded,
// otherwise the residual trip() leaves survive) and the loop forest
// with each header's inferred bound.
func printTrips(w io.Writer, name string, r *analysis.Report) {
	fmt.Fprintf(w, "%s: numeric work %s, numeric span %s\n", name, r.NumWork, r.NumSpan)
	for _, l := range r.AllLoops() {
		fmt.Fprintf(w, "%s:   %sloop %s: trip %s\n",
			name, strings.Repeat("  ", l.Depth-1), l.Header, l.Trip)
	}
}

// printLatency renders the scheduling report for one program.
func printLatency(w io.Writer, name string, r *analysis.Report) {
	fmt.Fprintf(w, "%s: latency %s, work %s, span %s\n", name, r.Latency, r.Work, r.Span)
	for _, l := range r.AllLoops() {
		fmt.Fprintf(w, "%s:   %sloop %s: %s, work/pass %s, span/pass %s\n",
			name, strings.Repeat("  ", l.Depth-1), l.Header, l.Class, l.Work, l.Span)
	}
}

func toJSON(name string, p *tpal.Program, r *analysis.Report) jsonReport {
	out := jsonReport{
		Name:         name,
		Blocks:       len(p.Blocks),
		Diags:        []jsonDiag{},
		LatencyClass: r.Latency.Class.String(),
		LatencyBound: r.Latency.Bound,
		Loops:        []jsonLoop{},
		Work:         r.Work.String(),
		Span:         r.Span.String(),
		NumWork:      r.NumWork.String(),
		NumSpan:      r.NumSpan.String(),
	}
	for _, d := range r.Diags {
		out.Diags = append(out.Diags, jsonDiag{
			Severity: d.Severity.String(),
			Code:     string(d.Code),
			Block:    string(d.Block),
			Instr:    d.Instr,
			Msg:      d.Msg,
		})
	}
	for _, l := range r.AllLoops() {
		blocks := make([]string, len(l.Blocks))
		for i, b := range l.Blocks {
			blocks[i] = string(b)
		}
		out.Loops = append(out.Loops, jsonLoop{
			Header:  string(l.Header),
			Depth:   l.Depth,
			Blocks:  blocks,
			Latency: l.Class.String(),
			Work:    l.Work.String(),
			Span:    l.Span.String(),
			Trip:    l.Trip.String(),
		})
	}
	return out
}

// expandArgs resolves the argument list: directories expand to every
// .tpal/.mp file beneath them (sorted), files pass through unchanged.
func expandArgs(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, arg)
			continue
		}
		var found []string
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			if strings.HasSuffix(path, ".tpal") || strings.HasSuffix(path, ".mp") {
				found = append(found, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		sort.Strings(found)
		out = append(out, found...)
	}
	return out, nil
}

// load reads a program: .mp files go through the minipar compiler
// (whose parameters become the default entry registers), anything else
// through the assembler.
func load(path string) (*tpal.Program, []tpal.Reg, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(path, ".mp") {
		mp, err := minipar.Parse(string(src))
		if err != nil {
			return nil, nil, err
		}
		p, err := minipar.Compile(mp)
		if err != nil {
			return nil, nil, err
		}
		params := make([]tpal.Reg, len(mp.Params))
		for i, name := range mp.Params {
			params[i] = tpal.Reg(name)
		}
		return p, params, nil
	}
	p, err := asm.Parse(string(src))
	return p, nil, err
}
