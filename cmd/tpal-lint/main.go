// Command tpal-lint runs the static TPAL verifier over programs and
// reports diagnostics. It checks TPAL assembly files (.tpal), minipar
// programs (.mp, verified after compilation to TPAL), and — with no
// file arguments — the built-in corpus (prod, pow, fib).
//
// Usage:
//
//	tpal-lint                         # lint the built-in corpus
//	tpal-lint program.tpal            # lint an assembly file
//	tpal-lint -entry a,b program.tpal # assume a and b initialized at entry
//	tpal-lint -Werror program.mp      # warnings fail the run too
//	tpal-lint -v *.tpal               # report clean files as well
//
// Exit status: 0 when every program is clean (warnings allowed unless
// -Werror), 1 when any program has diagnostics that fail the run, 2 on
// usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tpal/internal/minipar"
	"tpal/internal/tpal"
	"tpal/internal/tpal/analysis"
	"tpal/internal/tpal/asm"
	"tpal/internal/tpal/programs"
)

// corpusEntryRegs mirrors the harness wrappers' initial register files.
var corpusEntryRegs = map[string][]tpal.Reg{
	"prod": {"a", "b"},
	"pow":  {"d", "e"},
	"fib":  {"n"},
}

func main() {
	var (
		entry   = flag.String("entry", "", "comma-separated registers assumed initialized at entry")
		werror  = flag.Bool("Werror", false, "treat warnings as errors")
		verbose = flag.Bool("v", false, "also report programs that verify clean")
	)
	flag.Parse()

	var entryRegs []tpal.Reg
	if *entry != "" {
		for _, name := range strings.Split(*entry, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				fmt.Fprintln(os.Stderr, "tpal-lint: empty register name in -entry")
				os.Exit(2)
			}
			entryRegs = append(entryRegs, tpal.Reg(name))
		}
	}

	failed := false
	lint := func(name string, p *tpal.Program, regs []tpal.Reg) {
		diags := analysis.VerifyWith(p, analysis.Options{EntryRegs: regs})
		for _, d := range diags {
			fmt.Printf("%s: %s\n", name, d)
		}
		if analysis.HasErrors(diags) || (*werror && len(diags) > 0) {
			failed = true
		} else if *verbose {
			fmt.Printf("%s: ok (%d blocks)\n", name, len(p.Blocks))
		}
	}

	if flag.NArg() == 0 {
		names := make([]string, 0, len(programs.All()))
		for name := range programs.All() {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			regs := entryRegs
			if regs == nil {
				regs = corpusEntryRegs[name]
			}
			lint(name, programs.All()[name], regs)
		}
	} else {
		for _, path := range flag.Args() {
			p, params, err := load(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tpal-lint: %s: %v\n", path, err)
				os.Exit(2)
			}
			regs := entryRegs
			if regs == nil {
				regs = params
			}
			lint(path, p, regs)
		}
	}

	if failed {
		os.Exit(1)
	}
}

// load reads a program: .mp files go through the minipar compiler
// (whose parameters become the default entry registers), anything else
// through the assembler.
func load(path string) (*tpal.Program, []tpal.Reg, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(path, ".mp") {
		mp, err := minipar.Parse(string(src))
		if err != nil {
			return nil, nil, err
		}
		p, err := minipar.Compile(mp)
		if err != nil {
			return nil, nil, err
		}
		params := make([]tpal.Reg, len(mp.Params))
		for i, name := range mp.Params {
			params[i] = tpal.Reg(name)
		}
		return p, params, nil
	}
	p, err := asm.Parse(string(src))
	return p, nil, err
}
