GO ?= go

.PHONY: build test vet race race-test serve-test autopar-test compile-test lint lint-go fuzz cover bench bench-rt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# race-test runs Go's own race detector over the concurrent runtime
# packages (the schedulers and the work-stealing deque are the only
# code with real shared-memory concurrency).
race-test:
	$(GO) test -race ./internal/sched ./internal/heartbeat ./internal/cilk

# serve-test runs the job-execution service and daemon suites under
# the race detector: admission gating, sharded DRR dispatch with work
# stealing, batched admission, singleflight dedup, job retention,
# budget and deadline enforcement, drain, the HTTP E2E batch, the SSE
# event stream, and the 10k-job many-tenant load smoke (which rewrites
# BENCH_serve.json and fails if the burst observed no cross-shard
# steal or no singleflight collapse).
serve-test:
	$(GO) test -race ./internal/serve ./cmd/tpal-serve

# autopar-test runs the auto-parallelizer's certification contract
# under the Go race detector: the pass's own suite (every rewrite
# re-verified and compared against sequential interpretation across
# the schedule matrix), the differential oracle over the minipar
# corpus, the golden CLI verdict tables, and the serve admission path.
autopar-test:
	$(GO) test -race ./internal/minipar ./internal/minipar/autopar ./cmd/minipar
	$(GO) test -race ./internal/serve -run AutoParallelize
	$(GO) test -race ./cmd/tpal-lint -run Autopar

# compile-test runs the closure-threaded backend's differential-oracle
# suite under the Go race detector: the corpus, minipar samples, fault
# paths, budget/cancellation cuts, and the backend seam, every case
# cross-checked against the interpreter across the schedule matrix
# (lockstep, random-order seeds, depth-first, signal-period splits).
compile-test:
	$(GO) test -race ./internal/tpal/machine/compile ./internal/tpal/machine
	$(GO) test -race ./internal/serve -run CompiledBackend

# lint runs the static TPAL verifier — including the interference
# (determinacy-race) pass — over the built-in corpus and every
# checked-in minipar sample; any diagnostic (warnings included) fails.
lint:
	$(GO) run ./cmd/tpal-lint -Werror -race
	$(GO) run ./cmd/tpal-lint -Werror -race internal/minipar/testdata
	$(GO) run ./cmd/tpal-lint -Werror -race -autopar examples/autopar

# lint-go runs the Go-side style gates: go vet plus the repository's
# own go/ast checker (cmd/golint), which needs no network or module
# cache — it is pure standard library.
lint-go:
	$(GO) vet ./...
	$(GO) run ./cmd/golint ./internal ./cmd

# fuzz is the CI smoke stage: a short run of each analysis fuzzer (go
# test accepts one -fuzz pattern at a time, so they run back to back).
# FuzzVerify checks verifier soundness against the machine; FuzzLiveness
# checks the promotion-liveness invariants on prppt-stripped mutants;
# FuzzRaceAgreement checks that every race the dynamic sanitizer finds
# is also flagged by the static interference pass. FuzzAutoPar throws
# generated sequential minipar programs at the auto-parallelizer and
# holds it to the certification contract: clean re-verification,
# silent sanitizer, results identical to sequential interpretation.
# FuzzOpt drives mutated corpus programs through the certified
# optimizer: no panics, no new errors, idempotent, and serially
# equivalent to the input program. FuzzBackendEquiv holds the compiled
# backend to the interpreter on mutated corpus programs: identical
# results, stats, traces, faults, and sanitizer verdicts (DESIGN.md §15).
fuzz:
	$(GO) test ./internal/tpal/analysis -run='^$$' -fuzz='^FuzzVerify$$' -fuzztime=10s
	$(GO) test ./internal/tpal/analysis -run='^$$' -fuzz='^FuzzLiveness$$' -fuzztime=10s
	$(GO) test ./internal/tpal/analysis -run='^$$' -fuzz='^FuzzRaceAgreement$$' -fuzztime=10s
	$(GO) test ./internal/minipar/autopar -run='^$$' -fuzz='^FuzzAutoPar$$' -fuzztime=10s
	$(GO) test ./internal/tpal/opt -run='^$$' -fuzz='^FuzzOpt$$' -fuzztime=10s
	$(GO) test ./internal/tpal/machine -run='^$$' -fuzz='^FuzzTrips$$' -fuzztime=10s
	$(GO) test ./internal/tpal/machine/compile -run='^$$' -fuzz='^FuzzBackendEquiv$$' -fuzztime=10s

# cover enforces a statement-coverage floor on internal/tpal/analysis
# — the package whose verdicts every other surface trusts (serve
# admission, the optimizer certifier, autopar, the lint CLI) — and on
# the closure-threaded backend, whose lowering must stay observably
# identical to the interpreter. The profile lands in cover.out
# (gitignored); the floor is a ratchet — raise it when coverage grows,
# never lower it to admit a regression.
COVER_PKG   = ./internal/tpal/analysis ./internal/tpal/machine/compile
COVER_FLOOR = 80.0

cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKG)
	@$(GO) tool cover -func=cover.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { pct = $$3; gsub("%", "", pct); \
		  if (pct + 0 < floor + 0) { printf "coverage %s%% is below the %s%% floor\n", pct, floor; exit 1 } \
		  else { printf "coverage %s%% meets the %s%% floor\n", pct, floor } }'

# bench runs the Go micro-benchmarks for the execution backends:
# per-step dispatch cost of the interpreter vs the closure-threaded
# backend across serial, heartbeat, and sanitizer configurations, plus
# the one-time lowering cost per corpus program.
bench:
	$(GO) test ./internal/tpal/machine -run='^$$' -bench 'BenchmarkDispatch|BenchmarkCompile' -benchtime 1s

# bench-rt rewrites BENCH_rt.json, the committed runtime perf baseline:
# the native-runtime benchmark walls (plus-reduce-array, spmv-random,
# spmv-powerlaw, floyd-warshall-1K, mergesort-uniform, mergesort-exp)
# with the tracer disabled and enabled, the abstract-machine kernels on
# the interpreter vs the compiled backend (with and without the race
# sanitizer), and the corpus promotion-gap check against the static
# liveness bounds. It fails if the tracer delta on plus-reduce-array
# exceeds the 5% overhead contract (DESIGN.md §11), the compiled
# backend's plus-reduce-array speedup falls below the 3x dispatch
# floor (DESIGN.md §15), or an observed gap exceeds its static bound.
bench-rt:
	$(GO) run ./cmd/tpal-trace -bench-rt -reps 5 -out BENCH_rt.json

ci: vet lint-go build race race-test serve-test autopar-test compile-test lint fuzz cover bench-rt
