GO ?= go

.PHONY: build test vet race lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# lint runs the static TPAL verifier over the built-in corpus and every
# checked-in minipar sample; any diagnostic (warnings included) fails.
lint:
	$(GO) run ./cmd/tpal-lint -Werror
	$(GO) run ./cmd/tpal-lint -Werror internal/minipar/testdata/*.mp

ci: vet build race lint
