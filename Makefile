GO ?= go

.PHONY: build test vet race lint fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# lint runs the static TPAL verifier over the built-in corpus and every
# checked-in minipar sample; any diagnostic (warnings included) fails.
lint:
	$(GO) run ./cmd/tpal-lint -Werror
	$(GO) run ./cmd/tpal-lint -Werror internal/minipar/testdata

# fuzz is the CI smoke stage: a short run of each analysis fuzzer (go
# test accepts one -fuzz pattern at a time, so they run back to back).
# FuzzVerify checks verifier soundness against the machine; FuzzLiveness
# checks the promotion-liveness invariants on prppt-stripped mutants.
fuzz:
	$(GO) test ./internal/tpal/analysis -run='^$$' -fuzz='^FuzzVerify$$' -fuzztime=10s
	$(GO) test ./internal/tpal/analysis -run='^$$' -fuzz='^FuzzLiveness$$' -fuzztime=10s

ci: vet build race lint fuzz
