// Package tpal is a Go reproduction of "Task Parallel Assembly Language
// for Uncompromising Parallelism" (Rainey et al., PLDI 2021): heartbeat
// scheduling as a practical runtime, plus the TPAL abstract machine.
//
// # The heartbeat runtime
//
// Parallelism written against this package is latent by default: loops
// and forks run as ordinary sequential code, and only when a heartbeat
// interrupt arrives (every ♥, default 100µs) does the runtime promote
// the oldest latent parallelism into an actual task. Task-creation
// overhead is thereby amortized against ♥ worth of useful work, no
// matter how fine-grained the program's parallelism is — no manual
// granularity control, no tuning per machine.
//
//	rt := tpal.New(tpal.Config{})
//	var sum float64
//	rt.Run(func(c *tpal.Ctx) {
//		sum = tpal.Reduce(c, 0, len(xs),
//			func(a, b float64) float64 { return a + b },
//			func(lo, hi int) float64 {
//				s := 0.0
//				for i := lo; i < hi; i++ { s += xs[i] }
//				return s
//			})
//	})
//
// Primitives: (*Ctx).For and (*Ctx).ForNested for parallel loops,
// Reduce and Accumulate for reductions, (*Ctx).Fork2 and Fork2Call for
// fork-join recursion. All of them expose maximal parallelism at
// near-zero serial cost.
//
// # The abstract machine
//
// The TPAL assembly language itself — fork/join instructions, join
// records, promotion-ready program points, the stack extension with
// promotion-ready marks — is implemented as an executable abstract
// machine. Assemble parses textual TPAL; Execute runs a program under a
// configurable heartbeat. The paper's prod, pow, and fib programs ship
// in internal/tpal/programs and run through cmd/tpal-run.
//
// # Reproduction artifacts
//
// cmd/tpal-bench regenerates every figure of the paper's evaluation;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for
// measured-versus-paper shapes.
package tpal

import (
	"time"

	"tpal/internal/heartbeat"
	"tpal/internal/interrupt"
	"tpal/internal/tpal"
	"tpal/internal/tpal/asm"
	"tpal/internal/tpal/machine"
)

// Ctx is a heartbeat task context; it carries the promotion-ready mark
// list of the running task.
type Ctx = heartbeat.Ctx

// Config configures a heartbeat runtime; the zero value selects
// GOMAXPROCS-1 workers, ♥ = 100µs, and no interrupt mechanism (pure
// serial elaboration). Use one of the Mechanism constructors to enable
// heartbeats.
type Config = heartbeat.Config

// RT is a heartbeat runtime instance.
type RT = heartbeat.RT

// RunStats reports timing, scheduling, interrupt-delivery, and
// cost-model (work/span) statistics for one Run.
type RunStats = heartbeat.Stats

// New creates a heartbeat runtime.
func New(cfg Config) *RT { return heartbeat.New(cfg) }

// Run executes root on a fresh runtime built from cfg.
func Run(cfg Config, root func(*Ctx)) RunStats { return heartbeat.Run(cfg, root) }

// Reduce folds [lo, hi) with an associative combine applied in range
// order; leaf computes one block. Latently parallel.
func Reduce[T any](c *Ctx, lo, hi int, combine func(T, T) T, leaf func(lo, hi int) T) T {
	return heartbeat.Reduce(c, lo, hi, combine, leaf)
}

// Accumulate folds [lo, hi) into mutable accumulator views that merge at
// joins (the reducer-view pattern). Latently parallel.
func Accumulate[T any](c *Ctx, lo, hi int, newAcc func() T, merge func(into, from T), leaf func(acc T, lo, hi int)) T {
	return heartbeat.Accumulate(c, lo, hi, newAcc, merge, leaf)
}

// Fork2Call runs f(c, aArg) with f(·, bArg) latent, the allocation-free
// form of (*Ctx).Fork2 for recursive code.
func Fork2Call[A any](c *Ctx, f func(*Ctx, A), aArg, bArg A) {
	heartbeat.Fork2Call(c, f, aArg, bArg)
}

// Interrupt mechanisms, modeled after the paper's evaluation platforms.
// Pass the result in Config.Mechanism.
var (
	// NewPingThread models the best Linux mechanism: a dedicated
	// signaling thread with OS-timer slop and serialized delivery.
	NewPingThread = interrupt.NewPingThread
	// NewPAPI models Linux perf-counter overflow interrupts.
	NewPAPI = interrupt.NewPAPI
	// NewNautilus models the Nautilus kernel's Nemo IPIs driven by
	// per-core APIC timers: precise and cheap.
	NewNautilus = interrupt.NewNautilus
)

// Program is a TPAL assembly program.
type Program = tpal.Program

// MachineConfig configures the abstract machine: the heartbeat threshold
// ♥ in instructions, the fork-join cost τ of the cost semantics, the
// scheduling policy, and the entry register file.
type MachineConfig = machine.Config

// MachineResult is the halting register file plus execution statistics
// (including cost-semantics work and span).
type MachineResult = machine.Result

// Assemble parses textual TPAL assembly.
func Assemble(src string) (*Program, error) { return asm.Parse(src) }

// Execute runs a TPAL program on the abstract machine.
func Execute(p *Program, cfg MachineConfig) (MachineResult, error) {
	return machine.Run(p, cfg)
}

// IntReg builds a register file from integer entry registers, the common
// case for Execute.
func IntReg(regs map[string]int64) machine.RegFile {
	rf := make(machine.RegFile, len(regs))
	for name, v := range regs {
		rf[tpal.Reg(name)] = machine.IntV(v)
	}
	return rf
}

// ResultInt reads an integer result register from a machine result.
func ResultInt(res MachineResult, reg string) (int64, bool) {
	return res.Regs.Get(tpal.Reg(reg)).AsInt()
}

// DefaultHeartbeat is the paper's tuned heartbeat interval.
const DefaultHeartbeat = 100 * time.Microsecond
